package contingency

import (
	"fmt"
)

// Marginalize sums the table over every axis NOT in keep, returning the
// marginal table over the kept axes in ascending position order. This is the
// memo's Eqs. 1-5: e.g. keeping {A,B} of an ABC table computes
// N_ij = Σ_k N_ijk (Eq. 1).
//
// keep must be a non-empty subset of the table's axes.
func (t *Table) Marginalize(keep VarSet) (*Table, error) {
	if keep.Empty() {
		return nil, fmt.Errorf("contingency: cannot marginalize to the empty attribute set")
	}
	members := keep.Members()
	if members[len(members)-1] >= t.R() {
		return nil, fmt.Errorf("contingency: attribute set %v exceeds table's %d axes", keep, t.R())
	}
	names := make([]string, len(members))
	cards := make([]int, len(members))
	for i, p := range members {
		names[i] = t.names[p]
		cards[i] = t.cards[p]
	}
	m, err := New(names, cards)
	if err != nil {
		return nil, err
	}
	// Precompute, for each kept axis, its stride in the marginal table.
	mStrides := m.strides
	for off, c := range t.counts {
		if c == 0 {
			continue
		}
		rem := off
		mOff := 0
		// Decode only the kept coordinates.
		ki := 0
		for axis := 0; axis < len(t.cards); axis++ {
			v := rem / t.strides[axis]
			rem %= t.strides[axis]
			if ki < len(members) && members[ki] == axis {
				mOff += v * mStrides[ki]
				ki++
			}
		}
		m.counts[mOff] += c
	}
	m.total = t.total
	return m, nil
}

// MarginalCount returns the marginal count for a partial assignment: the sum
// of all cells that agree with the given values on the axes of vars. For
// example MarginalCount({A}, [i]) is N_i (Eq. 4); MarginalCount({A,C}, [i,k])
// is N_ik (Eq. 2). values are given in ascending axis order of vars.
func (t *Table) MarginalCount(vars VarSet, values []int) (int64, error) {
	members := vars.Members()
	if len(members) != len(values) {
		return 0, fmt.Errorf("contingency: %d values for attribute set %v", len(values), vars)
	}
	if len(members) == 0 {
		return t.total, nil
	}
	if members[len(members)-1] >= t.R() {
		return 0, fmt.Errorf("contingency: attribute set %v exceeds table's %d axes", vars, t.R())
	}
	for i, p := range members {
		if values[i] < 0 || values[i] >= t.cards[p] {
			return 0, fmt.Errorf("contingency: value %d for axis %d out of range [0,%d)",
				values[i], p, t.cards[p])
		}
	}
	// Iterate the complement axes only.
	free := make([]int, 0, t.R()-len(members))
	for axis := 0; axis < t.R(); axis++ {
		if !vars.Has(axis) {
			free = append(free, axis)
		}
	}
	base := 0
	for i, p := range members {
		base += values[i] * t.strides[p]
	}
	if len(free) == 0 {
		return t.counts[base], nil
	}
	var sum int64
	idx := make([]int, len(free))
	for {
		off := base
		for i, axis := range free {
			off += idx[i] * t.strides[axis]
		}
		sum += t.counts[off]
		// Odometer increment over the free axes.
		i := len(free) - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < t.cards[free[i]] {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	return sum, nil
}

// FirstOrderProbabilities returns, per axis, the relative frequencies
// p_i = N_i / N of Eq. 48 — the initial constraints of the discovery run.
func (t *Table) FirstOrderProbabilities() ([][]float64, error) {
	if t.total == 0 {
		return nil, fmt.Errorf("contingency: empty table has no marginal probabilities")
	}
	out := make([][]float64, t.R())
	for axis := 0; axis < t.R(); axis++ {
		m, err := t.Marginalize(NewVarSet(axis))
		if err != nil {
			return nil, err
		}
		p := make([]float64, t.cards[axis])
		for v := 0; v < t.cards[axis]; v++ {
			p[v] = float64(m.counts[v]) / float64(t.total)
		}
		out[axis] = p
	}
	return out, nil
}

// CheckConsistency verifies the bookkeeping invariants: the cached total
// equals the cell sum and no cell is negative. The discovery engine calls
// this once on input; it exists so corrupted tables fail loudly.
func (t *Table) CheckConsistency() error {
	var sum int64
	for i, c := range t.counts {
		if c < 0 {
			return fmt.Errorf("contingency: cell %d has negative count %d", i, c)
		}
		sum += c
	}
	if sum != t.total {
		return fmt.Errorf("contingency: cached total %d != cell sum %d", t.total, sum)
	}
	return nil
}
