package contingency

import (
	"bytes"
	"strings"
	"testing"

	"pka/internal/wire"
)

func encodedTable(t *testing.T) (*Table, []byte) {
	t.Helper()
	tab := MustNew([]string{"A", "B"}, []int{3, 2})
	for i, c := range []int64{5, 0, 12, 7, 0, 3} {
		if err := tab.Set(c, i/2, i%2); err != nil {
			t.Fatal(err)
		}
	}
	var w wire.Writer
	EncodeTable(&w, tab)
	return tab, w.Bytes()
}

func encodedSparse(t *testing.T) (*Sparse, []byte) {
	t.Helper()
	s, err := NewSparse([]string{"A", "B", "C"}, []int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range [][]int{{0, 0, 0}, {1, 2, 1}, {0, 1, 1}, {1, 2, 1}, {0, 0, 0}} {
		if err := s.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the projection cache so it travels.
	if _, err := s.ProjectCached(NewVarSet(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProjectCached(NewVarSet(2)); err != nil {
		t.Fatal(err)
	}
	var w wire.Writer
	EncodeSparse(&w, s)
	return s, w.Bytes()
}

func TestTableBinaryRoundTrip(t *testing.T) {
	tab, data := encodedTable(t)
	got, err := DecodeTable(wire.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != tab.Total() || got.R() != tab.R() {
		t.Fatalf("round trip lost shape or total: %d/%d vs %d/%d",
			got.R(), got.Total(), tab.R(), tab.Total())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			a, _ := tab.At(i, j)
			b, _ := got.At(i, j)
			if a != b {
				t.Errorf("cell (%d,%d): %d != %d", i, j, b, a)
			}
		}
	}
	// Canonical: re-encoding the decoded table reproduces the bytes.
	var w2 wire.Writer
	EncodeTable(&w2, got)
	if !bytes.Equal(data, w2.Bytes()) {
		t.Error("dense re-encode is not byte-identical")
	}
}

func TestSparseBinaryRoundTrip(t *testing.T) {
	s, data := encodedSparse(t)
	got, err := DecodeSparse(wire.NewReader(data), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != s.Total() {
		t.Fatalf("round trip total %d != %d", got.Total(), s.Total())
	}
	c1, err := s.MarginalCount(NewVarSet(0, 1), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := got.MarginalCount(NewVarSet(0, 1), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("marginal count %d != %d", c2, c1)
	}
	// The projection cache travels: the restored table re-encodes
	// byte-identically, cache included.
	var w2 wire.Writer
	EncodeSparse(&w2, got)
	if !bytes.Equal(data, w2.Bytes()) {
		t.Error("sparse re-encode is not byte-identical")
	}
}

// TestDecodeSparseRejectsCorrupt drives structurally corrupt sparse
// payloads through the decoder; each must fail loudly instead of
// producing an inconsistent table.
func TestDecodeSparseRejectsCorrupt(t *testing.T) {
	shape := func(w *wire.Writer) {
		w.Int(2)
		w.String("A")
		w.String("B")
		w.Ints([]int{2, 2})
	}
	cases := []struct {
		name  string
		build func(w *wire.Writer)
		want  string
	}{
		{"keys not ascending", func(w *wire.Writer) {
			shape(w)
			w.Int(2)
			w.Uint64(3)
			w.Uvarint(1)
			w.Uint64(1)
			w.Uvarint(1)
			w.Int(0)
		}, "not strictly ascending"},
		{"key out of range", func(w *wire.Writer) {
			shape(w)
			w.Int(1)
			w.Uint64(1 << 40) // bits beyond the 2x2 packing
			w.Uvarint(1)
			w.Int(0)
		}, "valid cell"},
		{"zero count", func(w *wire.Writer) {
			shape(w)
			w.Int(1)
			w.Uint64(0)
			w.Uvarint(0)
			w.Int(0)
		}, "non-positive count"},
		{"projection total mismatch", func(w *wire.Writer) {
			shape(w)
			w.Int(1)
			w.Uint64(0)
			w.Uvarint(4)
			w.Int(1)
			w.Ints([]int{0})
			w.Uvarint(1) // projection sums to 3, table totals 4
			w.Uvarint(2)
		}, "total"},
		{"projection beyond axes", func(w *wire.Writer) {
			shape(w)
			w.Int(0)
			w.Int(1)
			w.Ints([]int{5})
			w.Uvarint(0)
			w.Uvarint(0)
		}, "axes"},
		{"truncated cells", func(w *wire.Writer) {
			shape(w)
			w.Int(3)
			w.Uint64(0)
			w.Uvarint(1)
		}, "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w wire.Writer
			tc.build(&w)
			_, err := DecodeSparse(wire.NewReader(w.Bytes()), 2)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}
