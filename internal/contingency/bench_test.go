package contingency

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchTable builds a dense table with the given shape, counts filled
// deterministically.
func benchTable(b *testing.B, cards []int) *Table {
	b.Helper()
	t, err := New(nil, cards)
	if err != nil {
		b.Fatal(err)
	}
	cell := make([]int, len(cards))
	for off := 0; off < t.NumCells(); off++ {
		if err := t.Unflatten(off, cell); err != nil {
			b.Fatal(err)
		}
		if err := t.Set(int64(off%97)+1, cell...); err != nil {
			b.Fatal(err)
		}
	}
	return t
}

func BenchmarkObserve(b *testing.B) {
	t := MustNew(nil, []int{4, 4, 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := t.Observe(i%4, (i/4)%4, (i/16)%4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarginalize(b *testing.B) {
	for _, r := range []int{4, 8, 12} {
		cards := make([]int, r)
		for i := range cards {
			cards[i] = 2
		}
		t := benchTable(b, cards)
		keep := NewVarSet(0, r-1)
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := t.Marginalize(keep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMarginalCount(b *testing.B) {
	t := benchTable(b, []int{4, 4, 4, 4, 4})
	vars := NewVarSet(0, 2)
	values := []int{1, 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := t.MarginalCount(vars, values); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseObserve(b *testing.B) {
	cards := make([]int, 32)
	for i := range cards {
		cards[i] = 4
	}
	s, err := NewSparse(nil, cards)
	if err != nil {
		b.Fatal(err)
	}
	cell := make([]int, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cell {
			cell[j] = (i >> uint(j%8)) & 3
		}
		if err := s.Observe(cell...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseProject(b *testing.B) {
	cards := make([]int, 24)
	for i := range cards {
		cards[i] = 3
	}
	s, err := NewSparse(nil, cards)
	if err != nil {
		b.Fatal(err)
	}
	cell := make([]int, 24)
	for n := 0; n < 20000; n++ {
		for j := range cell {
			cell[j] = (n * (j + 1)) % 3
		}
		if err := s.Observe(cell...); err != nil {
			b.Fatal(err)
		}
	}
	keep := NewVarSet(0, 11, 23)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Project(keep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombinations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := Combinations(16, 3); len(got) != 560 {
			b.Fatal("wrong count")
		}
	}
}

// benchSparseWide builds a 20-attribute binary sparse table with 20k
// observations — the wide-schema regime where scan-time marginals matter.
func benchSparseWide(b *testing.B) *Sparse {
	b.Helper()
	cards := make([]int, 20)
	for i := range cards {
		cards[i] = 2
	}
	s, err := NewSparse(nil, cards)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cell := make([]int, len(cards))
	for n := 0; n < 20000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if err := s.Observe(cell...); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkSparseMarginalCountScan prices a discovery-style family sweep
// with the uncached per-cell scan: every marginal costs O(occupied).
func BenchmarkSparseMarginalCountScan(b *testing.B) {
	s := benchSparseWide(b)
	members := []int{3, 9, 17}
	values := make([]int, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < 8; v++ {
			values[0], values[1], values[2] = v>>2&1, v>>1&1, v&1
			if s.marginalCountScan(members, values) < 0 {
				b.Fatal("negative count")
			}
		}
	}
}

// BenchmarkSparseMarginalCountCached is the same sweep through
// MarginalCount's per-family projection cache: one O(occupied) projection,
// then O(1) dense lookups.
func BenchmarkSparseMarginalCountCached(b *testing.B) {
	s := benchSparseWide(b)
	fam := NewVarSet(3, 9, 17)
	values := make([]int, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < 8; v++ {
			values[0], values[1], values[2] = v>>2&1, v>>1&1, v&1
			n, err := s.MarginalCount(fam, values)
			if err != nil || n < 0 {
				b.Fatal("bad count")
			}
		}
	}
}
