package contingency

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse(nil, nil); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := NewSparse(nil, []int{0}); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := NewSparse([]string{"x"}, []int{2, 2}); err == nil {
		t.Error("name mismatch accepted")
	}
	// 65 binary attributes — over the old single-word cap — are accepted
	// and spill to a second key word.
	big := make([]int, 65)
	for i := range big {
		big[i] = 2
	}
	if s, err := NewSparse(nil, big); err != nil || s.KeyWords() != 2 {
		t.Errorf("65-bit key: err=%v, want a two-word key", err)
	}
	wide := make([]int, 60)
	for i := range wide {
		wide[i] = 2
	}
	if _, err := NewSparse(nil, wide); err != nil {
		t.Errorf("60 binary attributes rejected: %v", err)
	}
}

func TestSparseObserveAndAt(t *testing.T) {
	s, err := NewSparse([]string{"A", "B"}, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(4, 2, 4); err != nil {
		t.Fatal(err)
	}
	v, err := s.At(2, 4)
	if err != nil || v != 5 {
		t.Errorf("At = %d, %v", v, err)
	}
	if v, _ := s.At(0, 0); v != 0 {
		t.Errorf("unobserved cell = %d", v)
	}
	if s.Total() != 5 || s.Occupied() != 1 {
		t.Errorf("total %d occupied %d", s.Total(), s.Occupied())
	}
	// Decrement to zero removes the cell.
	if err := s.Add(-5, 2, 4); err != nil {
		t.Fatal(err)
	}
	if s.Occupied() != 0 || s.Total() != 0 {
		t.Errorf("after removal: occupied %d total %d", s.Occupied(), s.Total())
	}
	if err := s.Add(-1, 2, 4); err == nil {
		t.Error("negative cell accepted")
	}
	if err := s.Observe(9, 0); err == nil {
		t.Error("out-of-range observe accepted")
	}
	if _, err := s.At(0); err == nil {
		t.Error("short cell accepted")
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	dense := memoTable(t)
	s, err := FromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() != dense.Total() {
		t.Fatalf("total %d vs %d", s.Total(), dense.Total())
	}
	if s.Occupied() != 12 {
		t.Errorf("occupied = %d, want 12", s.Occupied())
	}
	back, err := s.ToDense()
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(back) {
		t.Error("dense -> sparse -> dense lost data")
	}
}

func TestSparseProjectMatchesDenseMarginalize(t *testing.T) {
	dense := memoTable(t)
	s, err := FromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []VarSet{
		NewVarSet(0), NewVarSet(1), NewVarSet(0, 2), NewVarSet(0, 1, 2),
	} {
		proj, err := s.Project(keep)
		if err != nil {
			t.Fatal(err)
		}
		marg, err := dense.Marginalize(keep)
		if err != nil {
			t.Fatal(err)
		}
		if !proj.Equal(marg) {
			t.Errorf("projection over %v differs from dense marginalization", keep)
		}
	}
	if _, err := s.Project(VarSet{}); err == nil {
		t.Error("empty projection accepted")
	}
	if _, err := s.Project(NewVarSet(9)); err == nil {
		t.Error("out-of-range projection accepted")
	}
}

func TestSparseMarginalCountMatchesDense(t *testing.T) {
	dense := memoTable(t)
	s, err := FromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		vars   VarSet
		values []int
	}{
		{NewVarSet(0), []int{0}},
		{NewVarSet(0, 2), []int{0, 1}},
		{NewVarSet(0, 1, 2), []int{2, 1, 1}},
		{VarSet{}, nil},
	}
	for _, c := range cases {
		want, err := dense.MarginalCount(c.vars, c.values)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.MarginalCount(c.vars, c.values)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("MarginalCount(%v, %v) = %d, dense %d", c.vars, c.values, got, want)
		}
	}
	if _, err := s.MarginalCount(NewVarSet(0), []int{0, 1}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := s.MarginalCount(NewVarSet(0), []int{7}); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestSparseWideSchema(t *testing.T) {
	// 40 binary attributes: dense would need 2^40 cells; sparse holds
	// exactly the observed distinct rows.
	cards := make([]int, 40)
	for i := range cards {
		cards[i] = 2
	}
	s, err := NewSparse(nil, cards)
	if err != nil {
		t.Fatal(err)
	}
	cell := make([]int, 40)
	for n := 0; n < 1000; n++ {
		for i := range cell {
			cell[i] = (n >> uint(i%10)) & 1
		}
		if err := s.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	if s.Total() != 1000 {
		t.Fatalf("total = %d", s.Total())
	}
	if s.Occupied() > 1024 {
		t.Errorf("occupied = %d, want <= 1024 distinct patterns", s.Occupied())
	}
	// Project onto a pair and check the dense result is consistent.
	proj, err := s.Project(NewVarSet(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if proj.Total() != 1000 {
		t.Errorf("projected total = %d", proj.Total())
	}
}

func TestSparseEachCellVisitsAll(t *testing.T) {
	dense := memoTable(t)
	s, err := FromDense(dense)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	visits := 0
	s.EachCell(func(cell []int, count int64) {
		visits++
		sum += count
	})
	if visits != 12 || sum != 3428 {
		t.Errorf("visited %d cells summing %d", visits, sum)
	}
}

func TestSparseKeyRoundTripProperty(t *testing.T) {
	s, err := NewSparse(nil, []int{3, 7, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d uint8) bool {
		cell := []int{int(a) % 3, int(b) % 7, int(c) % 2, int(d) % 5}
		if err := s.Observe(cell...); err != nil {
			return false
		}
		v, err := s.At(cell...)
		return err == nil && v >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewSparseKeyWidthBoundary(t *testing.T) {
	// Exactly 64 packed bits stays on the single-word fast path: 64 binary
	// attributes...
	exact := make([]int, 64)
	for i := range exact {
		exact[i] = 2
	}
	if s, err := NewSparse(nil, exact); err != nil || s.KeyWords() != 1 {
		t.Errorf("64-bit key: err=%v, want single word", err)
	}
	// ...and 16 attributes of 16 values (16 × 4 bits).
	nibble := make([]int, 16)
	for i := range nibble {
		nibble[i] = 16
	}
	if s, err := NewSparse(nil, nibble); err != nil || s.KeyWords() != 1 {
		t.Errorf("16×16 (64-bit) schema: err=%v, want single word", err)
	}
	// 65 bits — the old hard ceiling — now rolls over to a two-word key.
	over := append(append([]int(nil), exact...), 2)
	s, err := NewSparse(nil, over)
	if err != nil {
		t.Fatalf("65-bit schema rejected: %v", err)
	}
	if s.KeyWords() != 2 {
		t.Errorf("65-bit schema uses %d key words, want 2", s.KeyWords())
	}
	// Only the MaxVars attribute-count sanity ceiling remains, and its
	// error names the wide backend's cap rather than telling the caller to
	// shrink the schema.
	if _, err := NewSparse(nil, make([]int, MaxVars+1)); err == nil ||
		!strings.Contains(err.Error(), "multi-word") {
		t.Errorf("MaxVars cap error = %v, want mention of the multi-word backend", err)
	}
}

func TestSparseMarginalCountCacheMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s, err := NewSparse(nil, []int{3, 2, 4, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cell := make([]int, 5)
	for n := 0; n < 4000; n++ {
		for i := range cell {
			cell[i] = rng.Intn(s.Card(i))
		}
		if err := s.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	fams := []VarSet{NewVarSet(0), NewVarSet(1, 3), NewVarSet(0, 2, 4), NewVarSet(0, 1, 2, 3, 4)}
	for _, fam := range fams {
		members := fam.Members()
		values := make([]int, len(members))
		for {
			// Query twice: the first call builds the projection, the
			// second must serve the identical count from the cache.
			got1, err := s.MarginalCount(fam, values)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := s.MarginalCount(fam, values)
			if err != nil {
				t.Fatal(err)
			}
			want := s.marginalCountScan(members, values)
			if got1 != want || got2 != want {
				t.Fatalf("MarginalCount(%v, %v) = %d/%d, scan says %d", fam, values, got1, got2, want)
			}
			i := len(members) - 1
			for i >= 0 {
				values[i]++
				if values[i] < s.Card(members[i]) {
					break
				}
				values[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	}
}

func TestSparseMarginalCountCacheInvalidatedByMutation(t *testing.T) {
	s, err := NewSparse(nil, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(0, 1); err != nil {
		t.Fatal(err)
	}
	fam := NewVarSet(0)
	if n, _ := s.MarginalCount(fam, []int{0}); n != 1 {
		t.Fatalf("pre-mutation count = %d", n)
	}
	if err := s.Observe(0, 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.MarginalCount(fam, []int{0}); n != 2 {
		t.Errorf("post-mutation count = %d, want 2 (stale projection cache?)", n)
	}
}

func TestSparseCheckConsistency(t *testing.T) {
	s, err := NewSparse(nil, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := s.Observe(i%2, i%3); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Errorf("consistent table rejected: %v", err)
	}
	s.total++ // corrupt the bookkeeping
	if err := s.CheckConsistency(); err == nil {
		t.Error("corrupted total accepted")
	}
}

func TestSparseEachCellSortedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := NewSparse(nil, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 500; n++ {
		if err := s.Observe(rng.Intn(4), rng.Intn(4), rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
	}
	collect := func() [][]int {
		var out [][]int
		s.EachCellSorted(func(cell []int, count int64) {
			out = append(out, append(append([]int(nil), cell...), int(count)))
		})
		return out
	}
	a, b := collect(), collect()
	if len(a) != s.Occupied() || len(a) != len(b) {
		t.Fatalf("visited %d and %d cells, occupied %d", len(a), len(b), s.Occupied())
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("EachCellSorted order not deterministic at %d", i)
			}
		}
	}
}
