package contingency

import (
	"fmt"
	"strings"
)

// Table is a dense R-dimensional contingency table: one int64 count per
// combination of attribute values (the memo's N_ijk...). Axis i has
// Card(i) values; cells are laid out row-major with axis 0 slowest.
//
// A Table is mutable until handed to the discovery engine; the engine
// treats it as read-only.
type Table struct {
	names   []string
	cards   []int
	strides []int
	counts  []int64
	total   int64
}

// maxDenseCells bounds the dense allocation so a mistyped cardinality fails
// fast instead of exhausting memory.
const maxDenseCells = 1 << 28

// New creates an all-zero table. names supplies one label per axis (it may
// be nil, in which case axes are named v0, v1, ...); cards supplies the
// number of values per axis, each at least 1.
func New(names []string, cards []int) (*Table, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("contingency: table needs at least one attribute")
	}
	if len(cards) > MaxVars {
		return nil, fmt.Errorf("contingency: %d attributes exceeds limit %d", len(cards), MaxVars)
	}
	if names != nil && len(names) != len(cards) {
		return nil, fmt.Errorf("contingency: %d names for %d attributes", len(names), len(cards))
	}
	size := 1
	for i, c := range cards {
		if c < 1 {
			return nil, fmt.Errorf("contingency: attribute %d has cardinality %d (must be >= 1)", i, c)
		}
		if size > maxDenseCells/c {
			return nil, fmt.Errorf("contingency: table would exceed %d cells", maxDenseCells)
		}
		size *= c
	}
	t := &Table{
		cards:   append([]int(nil), cards...),
		strides: make([]int, len(cards)),
		counts:  make([]int64, size),
	}
	if names == nil {
		t.names = make([]string, len(cards))
		for i := range t.names {
			t.names[i] = fmt.Sprintf("v%d", i)
		}
	} else {
		t.names = append([]string(nil), names...)
	}
	stride := 1
	for i := len(cards) - 1; i >= 0; i-- {
		t.strides[i] = stride
		stride *= cards[i]
	}
	return t, nil
}

// MustNew is New for statically-known-valid shapes (fixtures, tests).
func MustNew(names []string, cards []int) *Table {
	t, err := New(names, cards)
	if err != nil {
		panic(err)
	}
	return t
}

// R returns the number of attributes (axes).
func (t *Table) R() int { return len(t.cards) }

// Card returns the number of values of axis i.
func (t *Table) Card(i int) int { return t.cards[i] }

// Cards returns a copy of all axis cardinalities.
func (t *Table) Cards() []int { return append([]int(nil), t.cards...) }

// Name returns the label of axis i.
func (t *Table) Name(i int) string { return t.names[i] }

// Names returns a copy of all axis labels.
func (t *Table) Names() []string { return append([]string(nil), t.names...) }

// NumCells returns the total number of cells.
func (t *Table) NumCells() int { return len(t.counts) }

// Total returns N, the sum of all cells (Eq. 6).
func (t *Table) Total() int64 { return t.total }

// offset converts a full index tuple to the flat position.
func (t *Table) offset(cell []int) (int, error) {
	if len(cell) != len(t.cards) {
		return 0, fmt.Errorf("contingency: cell has %d coordinates, table has %d axes",
			len(cell), len(t.cards))
	}
	off := 0
	for i, v := range cell {
		if v < 0 || v >= t.cards[i] {
			return 0, fmt.Errorf("contingency: coordinate %d = %d out of range [0,%d)",
				i, v, t.cards[i])
		}
		off += v * t.strides[i]
	}
	return off, nil
}

// At returns the count of the cell.
func (t *Table) At(cell ...int) (int64, error) {
	off, err := t.offset(cell)
	if err != nil {
		return 0, err
	}
	return t.counts[off], nil
}

// MustAt is At for known-valid coordinates.
func (t *Table) MustAt(cell ...int) int64 {
	v, err := t.At(cell...)
	if err != nil {
		panic(err)
	}
	return v
}

// Set replaces the cell's count. Negative counts are rejected: a contingency
// table records occurrences.
func (t *Table) Set(count int64, cell ...int) error {
	if count < 0 {
		return fmt.Errorf("contingency: negative count %d", count)
	}
	off, err := t.offset(cell)
	if err != nil {
		return err
	}
	t.total += count - t.counts[off]
	t.counts[off] = count
	return nil
}

// Add increments the cell by delta (delta may be negative as long as the
// cell stays non-negative); Observe(cell) is Add(1, cell).
func (t *Table) Add(delta int64, cell ...int) error {
	off, err := t.offset(cell)
	if err != nil {
		return err
	}
	if t.counts[off]+delta < 0 {
		return fmt.Errorf("contingency: cell %v would go negative", cell)
	}
	t.counts[off] += delta
	t.total += delta
	return nil
}

// Observe records one sample with the given attribute values — the
// tabulation step of the memo's Appendix A.
func (t *Table) Observe(cell ...int) error { return t.Add(1, cell...) }

// ObserveBatch records one sample per row, atomically: the whole batch is
// validated before anything is written, so a bad coordinate rejects it
// with the table untouched — the dense counterpart of Sparse.ObserveBatch,
// for streaming ingest over narrow schemas.
func (t *Table) ObserveBatch(rows [][]int) error {
	offs := make([]int, len(rows))
	for i, r := range rows {
		off, err := t.offset(r)
		if err != nil {
			return fmt.Errorf("contingency: batch row %d: %w", i, err)
		}
		offs[i] = off
	}
	for _, off := range offs {
		t.counts[off]++
	}
	t.total += int64(len(rows))
	return nil
}

// Counts exposes the flat row-major count slice (axis 0 slowest). The slice
// is live; callers must not modify it. It exists for the solvers, which
// iterate every cell in tight loops.
func (t *Table) Counts() []int64 { return t.counts }

// FlatIndex converts a full cell tuple to its row-major flat position,
// validating range.
func (t *Table) FlatIndex(cell []int) (int, error) { return t.offset(cell) }

// Unflatten fills cell with the coordinates of flat position off.
func (t *Table) Unflatten(off int, cell []int) error {
	if off < 0 || off >= len(t.counts) {
		return fmt.Errorf("contingency: flat index %d out of range [0,%d)", off, len(t.counts))
	}
	if len(cell) != len(t.cards) {
		return fmt.Errorf("contingency: destination has %d coordinates, table has %d axes",
			len(cell), len(t.cards))
	}
	for i := range t.cards {
		cell[i] = off / t.strides[i]
		off %= t.strides[i]
	}
	return nil
}

// EachCell invokes fn for every cell in row-major order with the cell's
// coordinates and count. The coordinate slice is reused between calls;
// copy it if retaining.
func (t *Table) EachCell(fn func(cell []int, count int64)) {
	cell := make([]int, len(t.cards))
	for off, c := range t.counts {
		rem := off
		for i := range t.cards {
			cell[i] = rem / t.strides[i]
			rem %= t.strides[i]
		}
		fn(cell, c)
	}
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	return &Table{
		names:   append([]string(nil), t.names...),
		cards:   append([]int(nil), t.cards...),
		strides: append([]int(nil), t.strides...),
		counts:  append([]int64(nil), t.counts...),
		total:   t.total,
	}
}

// Probabilities returns the relative-frequency estimate of the joint
// distribution: counts / N, in the table's row-major cell order.
// It returns an error when the table is empty (N == 0).
func (t *Table) Probabilities() ([]float64, error) {
	if t.total == 0 {
		return nil, fmt.Errorf("contingency: empty table has no probability estimate")
	}
	p := make([]float64, len(t.counts))
	n := float64(t.total)
	for i, c := range t.counts {
		p[i] = float64(c) / n
	}
	return p, nil
}

// Equal reports whether two tables have identical shape, names, and counts.
func (t *Table) Equal(u *Table) bool {
	if t.R() != u.R() || t.total != u.total {
		return false
	}
	for i := range t.cards {
		if t.cards[i] != u.cards[i] || t.names[i] != u.names[i] {
			return false
		}
	}
	for i := range t.counts {
		if t.counts[i] != u.counts[i] {
			return false
		}
	}
	return true
}

// String gives a compact debug form: shape plus total.
func (t *Table) String() string {
	dims := make([]string, len(t.cards))
	for i, c := range t.cards {
		dims[i] = fmt.Sprintf("%s:%d", t.names[i], c)
	}
	return fmt.Sprintf("Table[%s] N=%d", strings.Join(dims, " × "), t.total)
}
