package contingency

import (
	"math/bits"
	"math/rand"
	"testing"
)

// fuzzSchema derives a deterministic schema and cell from the fuzz inputs:
// r attributes with mixed cardinalities (including ones wide enough to
// force several bits per field and occasional word-boundary padding).
func fuzzSchema(seed int64, r int) (cards, cell []int) {
	rng := rand.New(rand.NewSource(seed))
	cards = make([]int, r)
	cell = make([]int, r)
	for i := range cards {
		switch rng.Intn(5) {
		case 0:
			cards[i] = 2
		case 1:
			cards[i] = 3
		case 2:
			cards[i] = 1 + rng.Intn(16)
		case 3:
			cards[i] = 1 << (1 + rng.Intn(10))
		default:
			cards[i] = 1 + rng.Intn(1000)
		}
		cell[i] = rng.Intn(cards[i])
	}
	return cards, cell
}

// FuzzPackUnpackRoundTrip fuzzes the multi-word cell key codec: for any
// schema the packed key must unpack to the same cell, repack to the same
// words, and distinct cells must get distinct keys.
func FuzzPackUnpackRoundTrip(f *testing.F) {
	f.Add(int64(1), 4)    // single word
	f.Add(int64(2), 64)   // exactly the old ceiling
	f.Add(int64(3), 65)   // first multi-word width
	f.Add(int64(4), 130)  // [2]uint64 fast path and beyond
	f.Add(int64(5), 520)  // wide string-key path
	f.Add(int64(42), 200) // mixed cardinalities across many words
	f.Fuzz(func(t *testing.T, seed int64, r int) {
		if r < 1 || r > 1024 {
			t.Skip()
		}
		cards, cell := fuzzSchema(seed, r)
		s, err := NewSparse(nil, cards)
		if err != nil {
			t.Fatalf("NewSparse(%v): %v", cards, err)
		}
		words := make([]uint64, s.KeyWords())
		s.packWords(cell, words)
		back := make([]int, r)
		s.unpackWords(words, back)
		for i := range cell {
			if back[i] != cell[i] {
				t.Fatalf("round trip changed coordinate %d: %d -> %d (cards %v)", i, cell[i], back[i], cards)
			}
		}
		again := make([]uint64, s.KeyWords())
		s.packWords(back, again)
		for w := range words {
			if words[w] != again[w] {
				t.Fatalf("repack changed word %d: %#x -> %#x", w, words[w], again[w])
			}
		}
		// Perturb one coordinate: the key must change (injectivity).
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		p := rng.Intn(r)
		if cards[p] < 2 {
			return
		}
		cell[p] = (cell[p] + 1) % cards[p]
		s.packWords(cell, again)
		same := true
		for w := range words {
			if words[w] != again[w] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("distinct cells packed to the same key (perturbed attribute %d, cards %v)", p, cards)
		}
	})
}

// TestKeyLayoutSingleWordCompat pins the no-straddle layout contract: on a
// schema fitting 64 bits the field layout is the exact packing the
// single-word implementation used, so keys (and the canonical sorted cell
// order derived from them) are unchanged by the refactor.
func TestKeyLayoutSingleWordCompat(t *testing.T) {
	cards := []int{3, 2, 7, 16, 5, 2, 9}
	fields, nwords, err := buildKeyLayout(cards)
	if err != nil {
		t.Fatal(err)
	}
	if nwords != 1 {
		t.Fatalf("layout used %d words, want 1", nwords)
	}
	shift := uint(0)
	for i, c := range cards {
		b := uint(bits.Len64(uint64(c - 1)))
		if b == 0 {
			b = 1
		}
		if fields[i].word != 0 || fields[i].shift != shift || fields[i].mask != (1<<b)-1 {
			t.Errorf("attribute %d field %+v, want word 0 shift %d mask %#x", i, fields[i], shift, (1<<b)-1)
		}
		shift += b
	}
}

// narrowRef is the old single-word VarSet semantics, kept as an
// executable reference for the property test below.
type narrowRef uint64

func (m narrowRef) add(p int) narrowRef    { return m | 1<<uint(p) }
func (m narrowRef) remove(p int) narrowRef { return m &^ (1 << uint(p)) }
func (m narrowRef) has(p int) bool         { return m&(1<<uint(p)) != 0 }
func (m narrowRef) len() int               { return bits.OnesCount64(uint64(m)) }

// TestVarSetMatchesNarrowReference drives random set operations through
// both the multi-word VarSet and the uint64 reference on positions < 64:
// every observable (membership, length, members, order, algebra, mask
// round-trip) must agree — the wide representation is a strict extension.
func TestVarSetMatchesNarrowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	set, ref := VarSet{}, narrowRef(0)
	other, otherRef := VarSet{}, narrowRef(0)
	check := func(step int) {
		t.Helper()
		if mask, ok := set.Mask64(); !ok || mask != uint64(ref) {
			t.Fatalf("step %d: Mask64 = (%#x, %v), want (%#x, true)", step, mask, ok, uint64(ref))
		}
		if set.Len() != ref.len() {
			t.Fatalf("step %d: Len = %d, want %d", step, set.Len(), ref.len())
		}
		if set.Empty() != (ref == 0) {
			t.Fatalf("step %d: Empty = %v, want %v", step, set.Empty(), ref == 0)
		}
		for _, p := range []int{0, 1, 31, 62, 63} {
			if set.Has(p) != ref.has(p) {
				t.Fatalf("step %d: Has(%d) = %v, want %v", step, p, set.Has(p), ref.has(p))
			}
		}
		members := set.Members()
		if len(members) != ref.len() {
			t.Fatalf("step %d: %d members, want %d", step, len(members), ref.len())
		}
		for _, p := range members {
			if !ref.has(p) {
				t.Fatalf("step %d: spurious member %d", step, p)
			}
		}
		if NewVarSet(members...) != set {
			t.Fatalf("step %d: Members -> NewVarSet does not round-trip", step)
		}
		// Algebra and order against the second set.
		if got, want := set.Union(other), VarSetFromMask(uint64(ref|otherRef)); got != want {
			t.Fatalf("step %d: Union = %v, want %v", step, got, want)
		}
		if got, want := set.Intersect(other), VarSetFromMask(uint64(ref&otherRef)); got != want {
			t.Fatalf("step %d: Intersect = %v, want %v", step, got, want)
		}
		if got, want := set.Minus(other), VarSetFromMask(uint64(ref&^otherRef)); got != want {
			t.Fatalf("step %d: Minus = %v, want %v", step, got, want)
		}
		if got, want := set.SubsetOf(other), ref&^otherRef == 0; got != want {
			t.Fatalf("step %d: SubsetOf = %v, want %v", step, got, want)
		}
		// Less must reproduce the old numeric-mask order exactly.
		if got, want := set.Less(other), uint64(ref) < uint64(otherRef); got != want {
			t.Fatalf("step %d: Less = %v, want numeric %v", step, got, want)
		}
	}
	for step := 0; step < 5000; step++ {
		p := rng.Intn(64)
		switch rng.Intn(4) {
		case 0:
			set, ref = set.Add(p), ref.add(p)
		case 1:
			set, ref = set.Remove(p), ref.remove(p)
		case 2:
			other, otherRef = other.Add(p), otherRef.add(p)
		default:
			other, otherRef = other.Remove(p), otherRef.remove(p)
		}
		check(step)
	}
}

// TestVarSetWideNarrowBoundary checks the representation transition at
// position 64: crossing it and coming back must restore the exact
// canonical narrow form (comparable equality, no lingering spill).
func TestVarSetWideNarrowBoundary(t *testing.T) {
	narrow := NewVarSet(3, 63)
	wide := narrow.Add(64).Add(200)
	if mask, ok := wide.Mask64(); ok {
		t.Fatalf("wide set claims narrow mask %#x", mask)
	}
	if !wide.Has(200) || !wide.Has(64) || !wide.Has(63) || !wide.Has(3) {
		t.Fatal("wide set lost members")
	}
	if wide.Len() != 4 {
		t.Fatalf("Len = %d, want 4", wide.Len())
	}
	back := wide.Remove(200).Remove(64)
	if back != narrow {
		t.Fatalf("removing high members did not restore the canonical narrow set: %v vs %v", back, narrow)
	}
	if narrow.Less(wide) != true || wide.Less(narrow) != false {
		t.Fatal("multi-word order must place wider sets after narrow ones sharing low words")
	}
	// Union/Minus across the boundary.
	if got := wide.Minus(narrow); got != NewVarSet(64, 200) {
		t.Fatalf("wide \\ narrow = %v", got.Members())
	}
	if got := narrow.Union(NewVarSet(64, 200)); got != wide {
		t.Fatalf("union does not rebuild the wide set: %v", got.Members())
	}
}
