// Package contingency implements the N-dimensional contingency tables of the
// memo's Figures 1-2: dense integer count arrays indexed by attribute value
// tuples, with marginalization over any subset of attributes (Eqs. 1-6),
// subset/family enumeration for the level-wise discovery scan, text rendering
// in the memo's layout, and JSON persistence.
//
// Attribute subsets are represented as VarSet multi-word bitmasks over
// attribute positions — an inline word covers the first 64 positions
// allocation-free, and wider schemas spill into further words up to the
// MaxVars sanity ceiling — far beyond the enumeration limits of the dense
// representation itself.
package contingency
