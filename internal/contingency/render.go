package contingency

import (
	"fmt"
	"io"
	"strings"
)

// RenderSlices writes the table in the memo's Figure 1 layout: one 2-D
// sub-table (rows = axis rowAxis, columns = axis colAxis) per combination of
// the remaining axes, with row/column marginals in the margins as in
// Figure 2 when withMarginals is set.
//
// It is intentionally a faithful presentation reproduction — the repro
// binary uses it to print Figures 1 and 2.
func (t *Table) RenderSlices(w io.Writer, rowAxis, colAxis int, withMarginals bool) error {
	if rowAxis == colAxis || rowAxis < 0 || colAxis < 0 || rowAxis >= t.R() || colAxis >= t.R() {
		return fmt.Errorf("contingency: invalid render axes %d, %d for %d-axis table",
			rowAxis, colAxis, t.R())
	}
	// The "page" axes are everything except rowAxis/colAxis.
	var pages []int
	for a := 0; a < t.R(); a++ {
		if a != rowAxis && a != colAxis {
			pages = append(pages, a)
		}
	}
	pageIdx := make([]int, len(pages))
	for {
		if err := t.renderOnePage(w, rowAxis, colAxis, pages, pageIdx, withMarginals); err != nil {
			return err
		}
		// Advance page odometer.
		i := len(pages) - 1
		for i >= 0 {
			pageIdx[i]++
			if pageIdx[i] < t.cards[pages[i]] {
				break
			}
			pageIdx[i] = 0
			i--
		}
		if i < 0 || len(pages) == 0 {
			break
		}
	}
	return nil
}

func (t *Table) renderOnePage(w io.Writer, rowAxis, colAxis int, pages, pageIdx []int, withMarginals bool) error {
	// Header naming the fixed page coordinates, e.g. "FAMILY HISTORY = 1".
	if len(pages) > 0 {
		parts := make([]string, len(pages))
		for i, a := range pages {
			parts[i] = fmt.Sprintf("%s=%d", t.names[a], pageIdx[i]+1)
		}
		fmt.Fprintf(w, "-- %s --\n", strings.Join(parts, ", "))
	}
	nr, nc := t.cards[rowAxis], t.cards[colAxis]
	cell := make([]int, t.R())
	for i, a := range pages {
		cell[a] = pageIdx[i]
	}
	colW := 8
	// Column header.
	fmt.Fprintf(w, "%-14s", t.names[rowAxis]+`\`+t.names[colAxis])
	for c := 0; c < nc; c++ {
		fmt.Fprintf(w, "%*d", colW, c+1)
	}
	if withMarginals {
		fmt.Fprintf(w, "%*s", colW, "Σ")
	}
	fmt.Fprintln(w)
	colSums := make([]int64, nc)
	var grand int64
	for r := 0; r < nr; r++ {
		cell[rowAxis] = r
		fmt.Fprintf(w, "%-14d", r+1)
		var rowSum int64
		for c := 0; c < nc; c++ {
			cell[colAxis] = c
			v, err := t.At(cell...)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%*d", colW, v)
			rowSum += v
			colSums[c] += v
		}
		grand += rowSum
		if withMarginals {
			fmt.Fprintf(w, "%*d", colW, rowSum)
		}
		fmt.Fprintln(w)
	}
	if withMarginals {
		fmt.Fprintf(w, "%-14s", "Σ")
		for c := 0; c < nc; c++ {
			fmt.Fprintf(w, "%*d", colW, colSums[c])
		}
		fmt.Fprintf(w, "%*d", colW, grand)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}
