package synth

import (
	"fmt"
	"testing"

	"pka/internal/stats"
)

func BenchmarkBuild(b *testing.B) {
	for _, factors := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("factors=%d", factors), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Survey(factors, 2.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSampleTable(b *testing.B) {
	truth, err := Telemetry()
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int64{10_000, 100_000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := truth.SampleTable(stats.NewRNG(int64(i)), n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSampleDataset(b *testing.B) {
	truth, err := Telemetry()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := truth.SampleDataset(stats.NewRNG(int64(i)), 10_000); err != nil {
			b.Fatal(err)
		}
	}
}
