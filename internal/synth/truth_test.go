package synth

import (
	"math"
	"testing"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/stats"
)

func binarySchema(t testing.TB, names ...string) *dataset.Schema {
	t.Helper()
	attrs := make([]dataset.Attribute, len(names))
	for i, n := range names {
		attrs[i] = dataset.Attribute{Name: n, Values: []string{"0", "1"}}
	}
	return dataset.MustSchema(attrs)
}

func TestBuildIndependentJoint(t *testing.T) {
	schema := binarySchema(t, "X", "Y")
	g, err := NewBuilder(schema).
		Marginal("X", []float64{0.3, 0.7}).
		Marginal("Y", []float64{0.6, 0.4}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.18, 0.12, 0.42, 0.28}
	joint := g.Joint()
	for i := range want {
		if math.Abs(joint[i]-want[i]) > 1e-12 {
			t.Errorf("cell %d = %g, want %g", i, joint[i], want[i])
		}
	}
	if len(g.Planted()) != 0 {
		t.Error("independent build reports planted families")
	}
}

func TestBuildNormalizes(t *testing.T) {
	schema := binarySchema(t, "X", "Y", "Z")
	g, err := NewBuilder(schema).
		Marginal("X", []float64{2, 6}). // unnormalized on purpose
		Couple([]string{"X", "Y"}, []float64{3, 1, 1, 3}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range g.Joint() {
		if p < 0 {
			t.Fatalf("negative probability %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("joint sums to %g", sum)
	}
	if len(g.Planted()) != 1 || g.Planted()[0] != contingency.NewVarSet(0, 1) {
		t.Errorf("planted = %v", g.Planted())
	}
}

func TestBuildErrors(t *testing.T) {
	schema := binarySchema(t, "X", "Y")
	cases := []struct {
		name string
		b    *Builder
	}{
		{"unknown marginal attr", NewBuilder(schema).Marginal("NOPE", []float64{1, 1})},
		{"unknown couple attr", NewBuilder(schema).Couple([]string{"X", "NOPE"}, []float64{1, 1, 1, 1})},
		{"bad marginal len", NewBuilder(schema).Marginal("X", []float64{1, 1, 1})},
		{"negative marginal", NewBuilder(schema).Marginal("X", []float64{-1, 2})},
		{"zero marginal", NewBuilder(schema).Marginal("X", []float64{0, 0})},
		{"bad factor len", NewBuilder(schema).Couple([]string{"X", "Y"}, []float64{1, 1})},
		{"negative factor", NewBuilder(schema).Couple([]string{"X", "Y"}, []float64{1, 1, 1, -1})},
		{"bad noise", NewBuilder(schema).Noise(1.5)},
	}
	for _, c := range cases {
		if _, err := c.b.Build(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNoiseMixesUniform(t *testing.T) {
	schema := binarySchema(t, "X", "Y")
	g, err := NewBuilder(schema).
		Marginal("X", []float64{1, 0}). // deterministic without noise
		Noise(0.1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	joint := g.Joint()
	// Cells with X=1 would be zero; noise must give them 0.1/4 each.
	if math.Abs(joint[2]-0.025) > 1e-12 || math.Abs(joint[3]-0.025) > 1e-12 {
		t.Errorf("noised zeros = %g, %g, want 0.025", joint[2], joint[3])
	}
	sum := 0.0
	for _, p := range joint {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("noised joint sums to %g", sum)
	}
}

func TestProbMatchesJoint(t *testing.T) {
	g, err := SmokingCancer()
	if err != nil {
		t.Fatal(err)
	}
	joint := g.Joint()
	cards := g.Schema().Cards()
	cell := make([]int, len(cards))
	for off := range joint {
		rem := off
		for i := len(cards) - 1; i >= 0; i-- {
			cell[i] = rem % cards[i]
			rem /= cards[i]
		}
		p, err := g.Prob(cell)
		if err != nil {
			t.Fatal(err)
		}
		if p != joint[off] {
			t.Fatalf("Prob(%v) = %g, joint[%d] = %g", cell, p, off, joint[off])
		}
	}
	if _, err := g.Prob([]int{0}); err == nil {
		t.Error("short cell accepted")
	}
	if _, err := g.Prob([]int{9, 0, 0}); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestSampleTableFrequencies(t *testing.T) {
	g, err := SmokingCancer()
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	tab, err := g.SampleTable(stats.NewRNG(3), n)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Total() != n {
		t.Fatalf("sampled total %d, want %d", tab.Total(), n)
	}
	emp, err := tab.Probabilities()
	if err != nil {
		t.Fatal(err)
	}
	joint := g.Joint()
	for i := range joint {
		// 5-sigma binomial tolerance.
		tol := 5 * math.Sqrt(joint[i]/float64(n))
		if math.Abs(emp[i]-joint[i]) > tol+1e-9 {
			t.Errorf("cell %d empirical %.5f vs truth %.5f (tol %.5f)", i, emp[i], joint[i], tol)
		}
	}
}

func TestSampleDatasetMatchesSchema(t *testing.T) {
	g, err := Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.SampleDataset(stats.NewRNG(5), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5000 {
		t.Fatalf("sampled %d records", d.Len())
	}
	// Tabulated dataset frequencies approximate the truth.
	tab, err := d.Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	emp, _ := tab.Probabilities()
	joint := g.Joint()
	var tv float64
	for i := range joint {
		tv += math.Abs(emp[i] - joint[i])
	}
	if tv/2 > 0.05 {
		t.Errorf("TV(empirical, truth) = %.3f, want < 0.05 at n=5000", tv/2)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	g, err := Survey(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.SampleTable(stats.NewRNG(42), 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.SampleTable(stats.NewRNG(42), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different tables")
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := Survey(1, 2); err == nil {
		t.Error("Survey with 1 factor accepted")
	}
	if _, err := Survey(4, 0); err == nil {
		t.Error("Survey with zero strength accepted")
	}
	if _, err := XOR3(0); err == nil {
		t.Error("XOR3 with zero strength accepted")
	}
	if _, err := IndependentUniform(1, 2); err == nil {
		t.Error("IndependentUniform r=1 accepted")
	}
	if _, err := IndependentUniform(2, 1); err == nil {
		t.Error("IndependentUniform card=1 accepted")
	}
}

func TestXOR3PairwiseIndependence(t *testing.T) {
	// The defining property: every pair of attributes is independent, the
	// triple is not.
	g, err := XOR3(3)
	if err != nil {
		t.Fatal(err)
	}
	joint := g.Joint()
	// Pairwise marginals: P(X=x, Y=y) must equal 1/4 for all pairs.
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	for _, pr := range pairs {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				sum := 0.0
				for off := 0; off < 8; off++ {
					cell := []int{off >> 2, (off >> 1) & 1, off & 1}
					if cell[pr[0]] == a && cell[pr[1]] == b {
						sum += joint[off]
					}
				}
				if math.Abs(sum-0.25) > 1e-12 {
					t.Errorf("pair %v cell (%d,%d) marginal %.6f, want 0.25", pr, a, b, sum)
				}
			}
		}
	}
	// Triple structure: xor-consistent cells carry more mass.
	if joint[0] <= 1.0/8 {
		t.Errorf("xor cell mass %g not boosted", joint[0])
	}
}

func TestSurveyPlantedFamilies(t *testing.T) {
	g, err := Survey(4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	planted := g.Planted()
	// Factors (1,2), (3,4) and (factor1, outcome).
	want := []contingency.VarSet{
		contingency.NewVarSet(0, 1),
		contingency.NewVarSet(2, 3),
		contingency.NewVarSet(0, 4),
	}
	if len(planted) != len(want) {
		t.Fatalf("planted %v, want %v", planted, want)
	}
	for i := range want {
		if planted[i] != want[i] {
			t.Errorf("planted[%d] = %v, want %v", i, planted[i], want[i])
		}
	}
}
