package synth

import (
	"fmt"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/stats"
)

// WideTruth is a ground truth for schemas far past Build's joint-space
// cap: the distribution is a product of independent two-attribute blocks,
// so exact probabilities and samples come from the per-pair joints and no
// global joint is ever materialized. A 500-attribute instance needs 250
// four-cell tables, not 2^500 cells.
type WideTruth struct {
	schema *dataset.Schema
	// pairs[i] is the normalized joint of attributes (2i, 2i+1), indexed
	// 2a+b for left value a and right value b.
	pairs [][]float64
}

// WidePairs returns a wide binary ground truth: 2*nPairs attributes where
// attribute 2i+1 is coupled to attribute 2i (odds ratio strength² for
// agreeing values) and pairs are mutually independent. Base rates vary per
// pair so the instance is not symmetric. The planted structure a perfect
// discovery run should recover is exactly the nPairs within-pair families;
// every cross-pair association is spurious.
func WidePairs(nPairs int, strength float64) (*WideTruth, error) {
	if nPairs < 1 {
		return nil, fmt.Errorf("synth: wide truth needs at least 1 pair, got %d", nPairs)
	}
	if strength <= 0 {
		return nil, fmt.Errorf("synth: non-positive coupling strength %g", strength)
	}
	attrs := make([]dataset.Attribute, 2*nPairs)
	for i := range attrs {
		attrs[i] = dataset.Attribute{
			Name:   fmt.Sprintf("W%04d", i),
			Values: []string{"0", "1"},
		}
	}
	schema, err := dataset.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	s := strength
	pairs := make([][]float64, nPairs)
	for i := range pairs {
		// Mildly varied base rates, as in Survey.
		pa := 0.30 + 0.04*float64(i%10)
		pb := 0.35 + 0.03*float64(i%8)
		q := []float64{
			pa * pb * s, pa * (1 - pb) / s,
			(1 - pa) * pb / s, (1 - pa) * (1 - pb) * s,
		}
		if _, err := stats.Normalize(q); err != nil {
			return nil, fmt.Errorf("synth: pair %d: %w", i, err)
		}
		pairs[i] = q
	}
	return &WideTruth{schema: schema, pairs: pairs}, nil
}

// Schema returns the schema.
func (t *WideTruth) Schema() *dataset.Schema { return t.schema }

// NumPairs returns the number of coupled attribute pairs.
func (t *WideTruth) NumPairs() int { return len(t.pairs) }

// Planted lists the within-pair families, in attribute order.
func (t *WideTruth) Planted() []contingency.VarSet {
	out := make([]contingency.VarSet, len(t.pairs))
	for i := range t.pairs {
		out[i] = contingency.NewVarSet(2*i, 2*i+1)
	}
	return out
}

// PairProb returns a copy of pair i's normalized joint, indexed 2a+b.
func (t *WideTruth) PairProb(i int) []float64 {
	return append([]float64(nil), t.pairs[i]...)
}

// PairCond returns the exact conditional P(attr_{2i+1} = b | attr_{2i} = a),
// the checkable answer a correctly served wide model must reproduce.
func (t *WideTruth) PairCond(i, b, a int) float64 {
	q := t.pairs[i]
	return q[2*a+b] / (q[2*a] + q[2*a+1])
}

// samplers builds one categorical sampler per pair. Draw order is pair
// 0..n-1 within each row, so samples are deterministic given the RNG.
func (t *WideTruth) samplers(rng *stats.RNG) ([]*stats.CategoricalSampler, error) {
	out := make([]*stats.CategoricalSampler, len(t.pairs))
	for i, q := range t.pairs {
		sp, err := stats.NewCategoricalSampler(rng, q)
		if err != nil {
			return nil, err
		}
		out[i] = sp
	}
	return out, nil
}

// sampleRow fills cell with one draw from the product distribution.
func sampleRow(samplers []*stats.CategoricalSampler, cell []int) {
	for i, sp := range samplers {
		off := sp.Draw()
		cell[2*i], cell[2*i+1] = off>>1, off&1
	}
}

// SampleSparse draws n rows directly into a sparse contingency table —
// the wide-schema twin of GroundTruth.SampleTable.
func (t *WideTruth) SampleSparse(rng *stats.RNG, n int) (*contingency.Sparse, error) {
	tab, err := contingency.NewSparse(t.schema.Names(), t.schema.Cards())
	if err != nil {
		return nil, err
	}
	samplers, err := t.samplers(rng)
	if err != nil {
		return nil, err
	}
	cell := make([]int, t.schema.R())
	for row := 0; row < n; row++ {
		sampleRow(samplers, cell)
		if err := tab.Observe(cell...); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// SampleDataset draws n individual records, for exercising the CSV ingest
// path end to end on a wide schema.
func (t *WideTruth) SampleDataset(rng *stats.RNG, n int) (*dataset.Dataset, error) {
	samplers, err := t.samplers(rng)
	if err != nil {
		return nil, err
	}
	d := dataset.NewDataset(t.schema)
	rec := make(dataset.Record, t.schema.R())
	for row := 0; row < n; row++ {
		sampleRow(samplers, rec)
		if err := d.Append(rec); err != nil {
			return nil, err
		}
	}
	return d, nil
}
