// Package synth generates synthetic categorical datasets with known ground
// truth. The memo's own evaluation uses a hypothetical survey; its
// motivating workloads (NASA's "masses of unevaluated data" — wind-tunnel
// tests, spacecraft observations, medical and social surveys) are not
// available, so the benches substitute seeded generators whose dependence
// structure is planted and therefore checkable: discovery should find
// exactly the planted families and nothing else.
//
// Ground truths are built as log-linear distributions — a product of
// per-attribute marginals and multiplicative interaction factors — which is
// the same family the discovery engine fits, making "did it recover the
// structure?" a well-posed question.
package synth
