package synth

import (
	"fmt"

	"pka/internal/dataset"
)

// SmokingCancer returns a ground truth shaped like the memo's worked
// example: three attributes with the memo's marginals and a smoking↔cancer
// and smoking↔family-history coupling of the same sign the data shows.
func SmokingCancer() (*GroundTruth, error) {
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "SMOKING", Values: []string{"Smoker", "Non smoker", "Non smoker married to a smoker"}},
		{Name: "CANCER", Values: []string{"Yes", "No"}},
		{Name: "FAMILY HISTORY", Values: []string{"Yes", "No"}},
	})
	return NewBuilder(schema).
		Marginal("SMOKING", []float64{0.376, 0.331, 0.293}).
		Marginal("CANCER", []float64{0.126, 0.874}).
		Marginal("FAMILY HISTORY", []float64{0.519, 0.481}).
		// Smokers carry excess cancer risk (the memo's N^AB_11 excess).
		Couple([]string{"SMOKING", "CANCER"}, []float64{
			1.48, 0.93, // smoker
			0.74, 1.04, // non smoker
			0.79, 1.03, // married to smoker
		}).
		// Smokers in this cohort skew away from family history (N^AC_12).
		Couple([]string{"SMOKING", "FAMILY HISTORY"}, []float64{
			0.81, 1.21,
			1.13, 0.86,
			1.15, 0.84,
		}).
		Build()
}

// Survey returns a synthetic medical-survey ground truth over nAttrs binary
// risk factors plus one three-valued OUTCOME, with a planted chain of
// pairwise couplings: factor_i ↔ factor_{i+1} and factor_0 ↔ OUTCOME.
// strength > 1 controls coupling intensity.
func Survey(nAttrs int, strength float64) (*GroundTruth, error) {
	if nAttrs < 2 {
		return nil, fmt.Errorf("synth: survey needs at least 2 risk factors, got %d", nAttrs)
	}
	if strength <= 0 {
		return nil, fmt.Errorf("synth: non-positive coupling strength %g", strength)
	}
	attrs := make([]dataset.Attribute, 0, nAttrs+1)
	for i := 0; i < nAttrs; i++ {
		attrs = append(attrs, dataset.Attribute{
			Name:   fmt.Sprintf("FACTOR%d", i+1),
			Values: []string{"yes", "no"},
		})
	}
	attrs = append(attrs, dataset.Attribute{
		Name:   "OUTCOME",
		Values: []string{"healthy", "mild", "severe"},
	})
	schema := dataset.MustSchema(attrs)
	b := NewBuilder(schema)
	for i := 0; i < nAttrs; i++ {
		// Mildly skewed base rates, varied per factor for realism.
		p := 0.25 + 0.05*float64(i%5)
		b.Marginal(attrs[i].Name, []float64{p, 1 - p})
	}
	b.Marginal("OUTCOME", []float64{0.7, 0.2, 0.1})
	s := strength
	for i := 0; i+1 < nAttrs; i += 2 {
		// Couple factor pairs (0,1), (2,3), ... so the planted structure
		// is sparse and recovery is checkable family by family.
		b.Couple([]string{attrs[i].Name, attrs[i+1].Name}, []float64{
			s, 1 / s,
			1 / s, s,
		})
	}
	b.Couple([]string{"FACTOR1", "OUTCOME"}, []float64{
		1 / s, s, s, // factor present: worse outcomes
		s, 1 / s, 1 / s,
	})
	return b.Build()
}

// Telemetry returns a spacecraft-telemetry-like ground truth: discretized
// sensor channels where an anomaly state drives correlated excursions in
// two of them — the "find significant correlations in the reserve data
// bank" workload of the memo's introduction.
func Telemetry() (*GroundTruth, error) {
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "BUS_VOLTAGE", Values: []string{"low", "nominal", "high"}},
		{Name: "TEMP_GRADIENT", Values: []string{"falling", "flat", "rising"}},
		{Name: "WHEEL_RPM", Values: []string{"low", "nominal", "high"}},
		{Name: "ANOMALY", Values: []string{"none", "thermal", "power"}},
	})
	return NewBuilder(schema).
		Marginal("BUS_VOLTAGE", []float64{0.15, 0.7, 0.15}).
		Marginal("TEMP_GRADIENT", []float64{0.25, 0.5, 0.25}).
		Marginal("WHEEL_RPM", []float64{0.2, 0.6, 0.2}).
		Marginal("ANOMALY", []float64{0.85, 0.09, 0.06}).
		// Thermal anomalies ride with rising temperature gradients.
		Couple([]string{"TEMP_GRADIENT", "ANOMALY"}, []float64{
			1.1, 0.3, 1.0,
			1.05, 0.5, 1.0,
			0.7, 3.5, 1.0,
		}).
		// Power anomalies depress bus voltage.
		Couple([]string{"BUS_VOLTAGE", "ANOMALY"}, []float64{
			0.9, 1.0, 4.0,
			1.05, 1.0, 0.4,
			0.9, 1.0, 0.8,
		}).
		Noise(0.01).
		Build()
}

// XOR3 returns a pure third-order interaction: three binary attributes
// where any pair is independent but the triple is not (Z ≈ X xor Y).
// It exercises the memo's "procedure is then repeated for the third-order
// N's" path, which second-order-only methods cannot capture.
func XOR3(strength float64) (*GroundTruth, error) {
	if strength <= 0 {
		return nil, fmt.Errorf("synth: non-positive strength %g", strength)
	}
	schema := dataset.MustSchema([]dataset.Attribute{
		{Name: "X", Values: []string{"0", "1"}},
		{Name: "Y", Values: []string{"0", "1"}},
		{Name: "Z", Values: []string{"0", "1"}},
	})
	s := strength
	coeffs := make([]float64, 8)
	for off := 0; off < 8; off++ {
		x, y, z := off>>2, (off>>1)&1, off&1
		if x^y == z {
			coeffs[off] = s
		} else {
			coeffs[off] = 1 / s
		}
	}
	return NewBuilder(schema).
		Couple([]string{"X", "Y", "Z"}, coeffs).
		Build()
}

// IndependentUniform returns r attributes of the given cardinality with no
// structure at all — the null workload for false-positive measurement.
func IndependentUniform(r, card int) (*GroundTruth, error) {
	if r < 2 || card < 2 {
		return nil, fmt.Errorf("synth: need r >= 2 and card >= 2, got %d, %d", r, card)
	}
	attrs := make([]dataset.Attribute, r)
	for i := range attrs {
		vals := make([]string, card)
		for v := range vals {
			vals[v] = fmt.Sprintf("v%d", v+1)
		}
		attrs[i] = dataset.Attribute{Name: fmt.Sprintf("ATTR%d", i+1), Values: vals}
	}
	return NewBuilder(dataset.MustSchema(attrs)).Build()
}
