package synth

import (
	"math"
	"testing"

	"pka/internal/stats"
)

func TestWidePairsValidation(t *testing.T) {
	if _, err := WidePairs(0, 2); err == nil {
		t.Error("WidePairs(0, 2) should fail")
	}
	if _, err := WidePairs(3, 0); err == nil {
		t.Error("WidePairs(3, 0) should fail")
	}
	if _, err := WidePairs(3, -1); err == nil {
		t.Error("WidePairs(3, -1) should fail")
	}
}

func TestWidePairsJoints(t *testing.T) {
	truth, err := WidePairs(300, 3)
	if err != nil {
		t.Fatalf("WidePairs: %v", err)
	}
	if got := truth.Schema().R(); got != 600 {
		t.Fatalf("schema has %d attributes, want 600", got)
	}
	if got := truth.NumPairs(); got != 300 {
		t.Fatalf("NumPairs = %d, want 300", got)
	}
	planted := truth.Planted()
	if len(planted) != 300 {
		t.Fatalf("%d planted families, want 300", len(planted))
	}
	for i, fam := range planted {
		m := fam.Members()
		if len(m) != 2 || m[0] != 2*i || m[1] != 2*i+1 {
			t.Fatalf("planted family %d has members %v, want [%d %d]", i, m, 2*i, 2*i+1)
		}
	}
	for i := 0; i < truth.NumPairs(); i++ {
		q := truth.PairProb(i)
		sum := 0.0
		for _, p := range q {
			if p <= 0 {
				t.Fatalf("pair %d has a non-positive cell: %v", i, q)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("pair %d joint sums to %g", i, sum)
		}
		for a := 0; a < 2; a++ {
			if got := truth.PairCond(i, 0, a) + truth.PairCond(i, 1, a); math.Abs(got-1) > 1e-12 {
				t.Fatalf("pair %d conditionals given a=%d sum to %g", i, a, got)
			}
		}
		// The coupling boosts agreement: P(b=a|a) must exceed the marginal
		// P(b=a) it would have under independence.
		indep := q[0] + q[2] // P(right = 0)
		if truth.PairCond(i, 0, 0) <= indep {
			t.Errorf("pair %d: P(0|0)=%g not boosted over marginal %g", i, truth.PairCond(i, 0, 0), indep)
		}
	}
}

func TestWidePairsSampling(t *testing.T) {
	truth, err := WidePairs(4, 3)
	if err != nil {
		t.Fatalf("WidePairs: %v", err)
	}
	const n = 20000
	tab, err := truth.SampleSparse(stats.NewRNG(5), n)
	if err != nil {
		t.Fatalf("SampleSparse: %v", err)
	}
	if tab.Total() != n {
		t.Fatalf("sampled total %d, want %d", tab.Total(), n)
	}
	// Empirical pair joints must sit near the exact ones.
	for i := 0; i < truth.NumPairs(); i++ {
		q := truth.PairProb(i)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				count, err := tab.MarginalCount(truth.Planted()[i], []int{a, b})
				if err != nil {
					t.Fatalf("MarginalCount: %v", err)
				}
				emp := float64(count) / float64(n)
				if math.Abs(emp-q[2*a+b]) > 0.02 {
					t.Errorf("pair %d cell (%d,%d): empirical %g vs exact %g", i, a, b, emp, q[2*a+b])
				}
			}
		}
	}
	// Determinism: the same seed reproduces the same table.
	again, err := truth.SampleSparse(stats.NewRNG(5), n)
	if err != nil {
		t.Fatalf("SampleSparse again: %v", err)
	}
	if err := tab.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	var mismatch bool
	tab.EachCellSorted(func(cell []int, c int64) {
		n2, err := again.At(cell...)
		if err != nil || n2 != c {
			mismatch = true
		}
	})
	if mismatch {
		t.Error("same seed produced different samples")
	}
}

func TestWidePairsSampleDataset(t *testing.T) {
	truth, err := WidePairs(3, 2)
	if err != nil {
		t.Fatalf("WidePairs: %v", err)
	}
	d, err := truth.SampleDataset(stats.NewRNG(9), 50)
	if err != nil {
		t.Fatalf("SampleDataset: %v", err)
	}
	if d.Len() != 50 {
		t.Fatalf("dataset has %d records, want 50", d.Len())
	}
	if d.Schema().R() != 6 {
		t.Fatalf("dataset schema has %d attributes, want 6", d.Schema().R())
	}
}
