package synth

import (
	"fmt"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/stats"
)

// Builder assembles a ground-truth distribution over a schema. Methods
// chain; the first configuration error is remembered and returned by Build.
type Builder struct {
	schema    *dataset.Schema
	marginals [][]float64
	factors   []factor
	noise     float64
	err       error
}

type factor struct {
	vars   []int
	coeffs []float64
}

// NewBuilder starts a ground truth over the schema with uniform marginals.
func NewBuilder(schema *dataset.Schema) *Builder {
	m := make([][]float64, schema.R())
	for i := range m {
		card := schema.Attr(i).Card()
		m[i] = make([]float64, card)
		for v := range m[i] {
			m[i][v] = 1 / float64(card)
		}
	}
	return &Builder{schema: schema, marginals: m}
}

// Marginal sets attribute attr's marginal distribution (normalized here).
func (b *Builder) Marginal(attr string, probs []float64) *Builder {
	pos, err := b.schema.Position(attr)
	if err != nil {
		if b.err == nil {
			b.err = fmt.Errorf("synth: %w", err)
		}
		return b
	}
	b.marginals[pos] = append([]float64(nil), probs...)
	return b
}

// Couple adds a multiplicative interaction factor over the named attributes:
// coeffs is dense over their joint value space (first attribute slowest).
// Coefficients of 1 leave cells untouched; >1 boosts, <1 suppresses.
func (b *Builder) Couple(attrs []string, coeffs []float64) *Builder {
	vars := make([]int, len(attrs))
	for i, a := range attrs {
		pos, err := b.schema.Position(a)
		if err != nil {
			if b.err == nil {
				b.err = fmt.Errorf("synth: %w", err)
			}
			return b
		}
		vars[i] = pos
	}
	b.factors = append(b.factors, factor{vars: vars, coeffs: append([]float64(nil), coeffs...)})
	return b
}

// Noise mixes the final distribution with uniform: p' = (1-eps)p + eps·u.
// It models measurement corruption and softens structural zeros.
func (b *Builder) Noise(eps float64) *Builder {
	b.noise = eps
	return b
}

// Build validates everything and materializes the normalized joint.
func (b *Builder) Build() (*GroundTruth, error) {
	if b.err != nil {
		return nil, b.err
	}
	cards := b.schema.Cards()
	size := b.schema.NumCells()
	if size > 1<<24 {
		return nil, fmt.Errorf("synth: joint space %d too large", size)
	}
	if b.noise < 0 || b.noise > 1 {
		return nil, fmt.Errorf("synth: noise %g outside [0,1]", b.noise)
	}
	for i, m := range b.marginals {
		if len(m) != cards[i] {
			return nil, fmt.Errorf("synth: attribute %q marginal has %d entries, want %d",
				b.schema.Attr(i).Name, len(m), cards[i])
		}
		sum := 0.0
		for _, p := range m {
			if p < 0 {
				return nil, fmt.Errorf("synth: negative marginal entry for %q", b.schema.Attr(i).Name)
			}
			sum += p
		}
		if sum <= 0 {
			return nil, fmt.Errorf("synth: zero-sum marginal for %q", b.schema.Attr(i).Name)
		}
	}
	var planted []contingency.VarSet
	for fi, f := range b.factors {
		want := 1
		for _, v := range f.vars {
			if v < 0 || v >= len(cards) {
				return nil, fmt.Errorf("synth: factor %d references an unknown attribute", fi)
			}
			want *= cards[v]
		}
		if len(f.coeffs) != want {
			return nil, fmt.Errorf("synth: factor %d has %d coefficients, want %d", fi, len(f.coeffs), want)
		}
		for _, c := range f.coeffs {
			if c < 0 {
				return nil, fmt.Errorf("synth: factor %d has a negative coefficient", fi)
			}
		}
		planted = append(planted, contingency.NewVarSet(f.vars...))
	}
	joint := make([]float64, size)
	cell := make([]int, len(cards))
	for off := 0; off < size; off++ {
		rem := off
		for i := len(cards) - 1; i >= 0; i-- {
			cell[i] = rem % cards[i]
			rem /= cards[i]
		}
		p := 1.0
		for i, v := range cell {
			p *= b.marginals[i][v]
		}
		for _, f := range b.factors {
			fo := 0
			for _, v := range f.vars {
				fo = fo*cards[v] + cell[v]
			}
			p *= f.coeffs[fo]
		}
		joint[off] = p
	}
	if _, err := stats.Normalize(joint); err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	if b.noise > 0 {
		u := 1 / float64(size)
		for i := range joint {
			joint[i] = (1-b.noise)*joint[i] + b.noise*u
		}
	}
	return &GroundTruth{schema: b.schema, joint: joint, planted: planted}, nil
}

// GroundTruth is a materialized known joint distribution.
type GroundTruth struct {
	schema  *dataset.Schema
	joint   []float64
	planted []contingency.VarSet
}

// Schema returns the schema.
func (g *GroundTruth) Schema() *dataset.Schema { return g.schema }

// Joint returns a copy of the normalized joint (row-major, attribute 0
// slowest).
func (g *GroundTruth) Joint() []float64 { return append([]float64(nil), g.joint...) }

// Planted lists the attribute families given interaction factors — what a
// perfect discovery run should flag (beyond first order).
func (g *GroundTruth) Planted() []contingency.VarSet {
	return append([]contingency.VarSet(nil), g.planted...)
}

// Prob returns the probability of a full cell.
func (g *GroundTruth) Prob(cell []int) (float64, error) {
	cards := g.schema.Cards()
	if len(cell) != len(cards) {
		return 0, fmt.Errorf("synth: cell has %d coordinates, want %d", len(cell), len(cards))
	}
	off := 0
	for i, v := range cell {
		if v < 0 || v >= cards[i] {
			return 0, fmt.Errorf("synth: coordinate %d out of range", i)
		}
		off = off*cards[i] + v
	}
	return g.joint[off], nil
}

// SampleTable draws n samples directly into a contingency table (one
// multinomial draw per sample; deterministic given the RNG).
func (g *GroundTruth) SampleTable(rng *stats.RNG, n int64) (*contingency.Table, error) {
	counts, err := rng.Multinomial(n, g.joint)
	if err != nil {
		return nil, err
	}
	t, err := contingency.New(g.schema.Names(), g.schema.Cards())
	if err != nil {
		return nil, err
	}
	cell := make([]int, g.schema.R())
	for off, c := range counts {
		if c == 0 {
			continue
		}
		if err := t.Unflatten(off, cell); err != nil {
			return nil, err
		}
		if err := t.Set(c, cell...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SampleDataset draws n individual records — the raw-sample form of
// Appendix A, for exercising the full ingest pipeline.
func (g *GroundTruth) SampleDataset(rng *stats.RNG, n int) (*dataset.Dataset, error) {
	sampler, err := stats.NewCategoricalSampler(rng, g.joint)
	if err != nil {
		return nil, err
	}
	cards := g.schema.Cards()
	d := dataset.NewDataset(g.schema)
	rec := make(dataset.Record, len(cards))
	for s := 0; s < n; s++ {
		off := sampler.Draw()
		for i := len(cards) - 1; i >= 0; i-- {
			rec[i] = off % cards[i]
			off /= cards[i]
		}
		if err := d.Append(rec); err != nil {
			return nil, err
		}
	}
	return d, nil
}
