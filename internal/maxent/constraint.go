package maxent

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"pka/internal/contingency"
)

// Constraint pins the probability of one cell of one attribute family:
// P(attributes of Family take Values) = Target. A first-order constraint is
// the memo's p_i^A (Eq. 48); a higher-order one is a significant joint such
// as p^AC_12 = .219.
type Constraint struct {
	// Family is the set of attribute positions the constraint spans.
	Family contingency.VarSet
	// Values gives one value per family member, in ascending position order.
	Values []int
	// Target is the required probability, in [0, 1].
	Target float64
}

// validate checks the constraint against attribute cardinalities. Members
// are walked by bit iteration rather than materialized — validate runs once
// per constraint on every model load, and the Members() slice showed up in
// restore allocation profiles.
func (c Constraint) validate(cards []int) error {
	if c.Family.Empty() {
		return fmt.Errorf("maxent: constraint with empty attribute family")
	}
	if n := c.Family.Len(); len(c.Values) != n {
		return fmt.Errorf("maxent: constraint over %v has %d values, want %d",
			c.Family, len(c.Values), n)
	}
	i := 0
	for wi, nw := 0, c.Family.NumWords(); wi < nw; wi++ {
		base := wi * 64
		for w := c.Family.Word(wi); w != 0; w &= w - 1 {
			p := base + bits.TrailingZeros64(w)
			if p >= len(cards) {
				return fmt.Errorf("maxent: constraint family %v exceeds %d attributes",
					c.Family, len(cards))
			}
			if c.Values[i] < 0 || c.Values[i] >= cards[p] {
				return fmt.Errorf("maxent: constraint value %d for attribute %d out of range [0,%d)",
					c.Values[i], p, cards[p])
			}
			i++
		}
	}
	if c.Target < 0 || c.Target > 1 {
		return fmt.Errorf("maxent: constraint target %g outside [0,1]", c.Target)
	}
	return nil
}

// Order returns the number of attributes the constraint spans.
func (c Constraint) Order() int { return c.Family.Len() }

// key is the dedupe identity: family plus cell values. Built with
// strconv, not fmt — it runs once per constraint on every model load, and
// reflection-based formatting dominated restore profiles.
func (c Constraint) key() string {
	b := make([]byte, 0, 24+4*len(c.Values))
	b = c.Family.AppendKey(b)
	b = append(b, ':')
	for _, v := range c.Values {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	return string(b)
}

// Label renders the constraint in the memo's a-notation using the supplied
// attribute names, e.g. "a^{A,C}_{1,2}" for the N^AC_12 constraint.
// Values print 1-based to match the memo's subscripts.
func (c Constraint) Label(names []string) string {
	members := c.Family.Members()
	sup := make([]string, len(members))
	sub := make([]string, len(members))
	for i, p := range members {
		if p < len(names) {
			sup[i] = names[p]
		} else {
			sup[i] = fmt.Sprintf("v%d", p)
		}
		sub[i] = fmt.Sprintf("%d", c.Values[i]+1)
	}
	return fmt.Sprintf("a^{%s}_{%s}", strings.Join(sup, ","), strings.Join(sub, ","))
}
