package maxent

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pka/internal/contingency"
)

// TestFitSatisfiesRandomConstraintsProperty: for random small tables and a
// random subset of second-order cells promoted to constraints, the fitted
// model matches every target (targets come from one empirical table, so
// they are always consistent).
func TestFitSatisfiesRandomConstraintsProperty(t *testing.T) {
	f := func(raw [12]uint8, pickMask uint16) bool {
		tab := contingency.MustNew(nil, []int{3, 2, 2})
		cell := make([]int, 3)
		total := int64(0)
		for off := 0; off < 12; off++ {
			tab.Unflatten(off, cell)
			// Keep all cells positive so no boundary cases arise.
			v := int64(raw[off]%50) + 1
			tab.Set(v, cell...)
			total += v
		}
		m, err := NewModel(nil, tab.Cards())
		if err != nil {
			return false
		}
		if err := m.AddFirstOrderConstraints(tab); err != nil {
			return false
		}
		// Promote a random subset of AB cells (at most 5 of 6 to avoid
		// fully determining the family against its marginals).
		fam := contingency.NewVarSet(0, 1)
		n := float64(tab.Total())
		added := 0
		for idx := 0; idx < 6 && added < 5; idx++ {
			if pickMask&(1<<uint(idx)) == 0 {
				continue
			}
			values := []int{idx / 2, idx % 2}
			obs, err := tab.MarginalCount(fam, values)
			if err != nil {
				return false
			}
			if err := m.AddConstraint(Constraint{
				Family: fam,
				Values: values,
				Target: float64(obs) / n,
			}); err != nil {
				return false
			}
			added++
		}
		rep, err := m.Fit(SolveOptions{Tol: 1e-10, MaxSweeps: 50000})
		if err != nil || !rep.Converged {
			return false
		}
		resid, err := m.Residual()
		return err == nil && resid < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFitEntropyNeverBelowConstrainedProperty: adding constraints can only
// reduce (or keep) the maximum entropy.
func TestFitEntropyDecreasesWithConstraints(t *testing.T) {
	tab := memoTable(t)
	base, err := NewModel(tab.Names(), tab.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	h0, err := base.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	prev := h0
	// Add the memo's three significant cells one by one.
	steps := []struct {
		fam    contingency.VarSet
		values []int
		count  float64
	}{
		{contingency.NewVarSet(0, 1), []int{0, 0}, 240},
		{contingency.NewVarSet(0, 2), []int{0, 0}, 540},
		{contingency.NewVarSet(1, 2), []int{0, 1}, 163},
	}
	for _, s := range steps {
		if err := base.AddConstraint(Constraint{
			Family: s.fam,
			Values: s.values,
			Target: s.count / 3428,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := base.Fit(SolveOptions{}); err != nil {
			t.Fatal(err)
		}
		h, err := base.Entropy()
		if err != nil {
			t.Fatal(err)
		}
		if h > prev+1e-9 {
			t.Errorf("entropy rose from %.9f to %.9f after adding %v", prev, h, s.fam)
		}
		prev = h
	}
	// And the final entropy is still at least the empirical distribution's
	// (maxent dominates any distribution meeting the same constraints).
	emp, _ := tab.Probabilities()
	hEmp := 0.0
	for _, p := range emp {
		if p > 0 {
			hEmp -= p * math.Log(p)
		}
	}
	if prev < hEmp-1e-9 {
		t.Errorf("fitted entropy %.9f below empirical %.9f", prev, hEmp)
	}
}

// TestJacobiMatchesGaussSeidelProperty: whenever the damped Jacobi solver
// converges, it reaches the same unique maximum-entropy solution as
// Gauss–Seidel. The property is conditional by necessity — damped Jacobi
// can genuinely diverge on near-degenerate random instances (overshooting
// until one cell holds all the mass; that fragility is exactly why the
// memo's Figure 4 procedure is the default and Jacobi only the X3
// ablation baseline) — so divergent draws are vacuous rather than
// failures, and the generator seed is pinned so every run checks the same
// instances.
func TestJacobiMatchesGaussSeidelProperty(t *testing.T) {
	jacobiConverged := 0
	f := func(raw [8]uint8, pick uint8) bool {
		tab := contingency.MustNew(nil, []int{2, 2, 2})
		cell := make([]int, 3)
		for off := 0; off < 8; off++ {
			tab.Unflatten(off, cell)
			tab.Set(int64(raw[off]%40)+2, cell...)
		}
		build := func() *Model {
			m, _ := NewModel(nil, tab.Cards())
			m.AddFirstOrderConstraints(tab)
			values := []int{int(pick) % 2, int(pick/2) % 2}
			obs, _ := tab.MarginalCount(contingency.NewVarSet(0, 1), values)
			m.AddConstraint(Constraint{
				Family: contingency.NewVarSet(0, 1),
				Values: values,
				Target: float64(obs) / float64(tab.Total()),
			})
			return m
		}
		gs := build()
		if rep, err := gs.Fit(SolveOptions{Tol: 1e-10}); err != nil || !rep.Converged {
			// Every cell holds count >= 2, so the exact-update solver must
			// converge; failure here is a real bug.
			return false
		}
		jc := build()
		if rep, err := jc.Fit(SolveOptions{Method: Jacobi, Tol: 1e-10, MaxSweeps: 200000}); err != nil || !rep.Converged {
			return true // Jacobi divergence: the property is vacuous
		}
		jacobiConverged++
		a, _ := gs.Joint()
		b, _ := jc.Joint()
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// The conditional property must not be vacuous across the board.
	if jacobiConverged < 10 {
		t.Errorf("Jacobi converged on only %d of 25 pinned instances", jacobiConverged)
	}
}

// TestTraceMonotoneResidual: the Gauss–Seidel residual decreases across
// sweeps on the memo's Table 2 problem (a sanity property of the recorded
// trace, not a general theorem).
func TestTraceResidualShrinks(t *testing.T) {
	tab := memoTable(t)
	m, err := NewModel(tab.Names(), tab.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 2),
		Values: []int{0, 1},
		Target: 750.0 / 3428,
	}); err != nil {
		t.Fatal(err)
	}
	// Run two fits at different sweep budgets; residual must not rise.
	m1 := m.Clone()
	rep1, err := m1.Fit(SolveOptions{MaxSweeps: 2, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	rep2, err := m2.Fit(SolveOptions{MaxSweeps: 20, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Residual > rep1.Residual+1e-12 {
		t.Errorf("residual rose with more sweeps: %g -> %g", rep1.Residual, rep2.Residual)
	}
}
