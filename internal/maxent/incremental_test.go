package maxent

import (
	"math"
	"testing"

	"pka/internal/contingency"
)

// TestSetTargetValidates covers the retarget mutation's error surface.
func TestSetTargetValidates(t *testing.T) {
	m, err := NewModel(nil, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	fam := contingency.NewVarSet(0)
	if err := m.AddConstraint(Constraint{Family: fam, Values: []int{0}, Target: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetTarget(fam, []int{1}, 0.5); err == nil {
		t.Error("SetTarget accepted a cell with no constraint")
	}
	if err := m.SetTarget(contingency.NewVarSet(1), []int{0}, 0.5); err == nil {
		t.Error("SetTarget accepted an unconstrained family")
	}
	if err := m.SetTarget(fam, []int{0}, 1.5); err == nil {
		t.Error("SetTarget accepted a target outside [0,1]")
	}
	if err := m.SetTarget(fam, []int{0}, 0.25); err != nil {
		t.Fatal(err)
	}
	if m.Constraints()[0].Target != 0.25 {
		t.Errorf("target after SetTarget = %g, want 0.25", m.Constraints()[0].Target)
	}
}

// TestSetTargetWarmRefitMatchesScratch: retargeting and refitting in place
// reaches the same solution as a fresh model solved from uniform with the
// new targets.
func TestSetTargetWarmRefitMatchesScratch(t *testing.T) {
	warm, _, tab := buildBlockTestModels(t)
	if _, err := warm.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}

	// Perturb the order-2 target of block {0,1} and warm-refit.
	fam := contingency.NewVarSet(0, 1)
	n, err := tab.MarginalCount(fam, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	newTarget := 0.9 * float64(n) / float64(tab.Total())
	if err := warm.SetTarget(fam, []int{1, 1}, newTarget); err != nil {
		t.Fatal(err)
	}
	rep, err := warm.Fit(SolveOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("warm refit did not converge (residual %g)", rep.Residual)
	}

	// Scratch model with the same constraint set and targets.
	scratch, _, _ := buildBlockTestModels(t)
	if err := scratch.SetTarget(fam, []int{1, 1}, newTarget); err != nil {
		t.Fatal(err)
	}
	if _, err := scratch.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}

	cell := make([]int, 4)
	for c0 := 0; c0 < 3; c0++ {
		for c1 := 0; c1 < 2; c1++ {
			cell[0], cell[1], cell[2], cell[3] = c0, c1, c0%2, c0%3
			pw, err := warm.CellProb(cell)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := scratch.CellProb(cell)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pw-ps) > 1e-6 {
				t.Errorf("cell %v: warm %.12f vs scratch %.12f", cell, pw, ps)
			}
		}
	}
}

// TestIncrementalFactoredSkipsCleanBlocks: after a converged factored fit,
// retargeting a constraint in one block and refitting incrementally must
// re-solve only that block — the other block's coefficients stay
// bit-identical and the report says it was skipped.
func TestIncrementalFactoredSkipsCleanBlocks(t *testing.T) {
	forceFactored(t, 8) // blocks are 6 cells each, the joint 36: factored path
	m, _, tab := buildBlockTestModels(t)
	if rep, err := m.Fit(SolveOptions{}); err != nil || !rep.Converged {
		t.Fatalf("initial factored fit: %v (report %+v)", err, rep)
	}

	// Snapshot block {2,3}'s order-2 coefficient before the update.
	cleanFam := contingency.NewVarSet(2, 3)
	before, err := m.Coefficient(cleanFam, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}

	fam := contingency.NewVarSet(0, 1)
	n, err := tab.MarginalCount(fam, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetTarget(fam, []int{1, 1}, 0.8*float64(n)/float64(tab.Total())); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(SolveOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("incremental refit did not converge (residual %g)", rep.Residual)
	}
	if rep.BlocksFit != 1 {
		t.Errorf("BlocksFit = %d, want 1 (only the retargeted block)", rep.BlocksFit)
	}
	if rep.BlocksSkipped != 1 {
		t.Errorf("BlocksSkipped = %d, want 1", rep.BlocksSkipped)
	}
	after, err := m.Coefficient(cleanFam, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("clean block's coefficient moved: %.17g -> %.17g", before, after)
	}

	// A second incremental fit with nothing dirty is a pure no-op.
	rep, err = m.Fit(SolveOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Sweeps != 0 {
		t.Errorf("clean incremental fit ran %d sweeps, want 0", rep.Sweeps)
	}

	// Without Incremental every constrained block is re-solved.
	if err := m.SetTarget(fam, []int{1, 1}, float64(n)/float64(tab.Total())); err != nil {
		t.Fatal(err)
	}
	rep, err = m.Fit(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksFit != 2 || rep.BlocksSkipped != 0 {
		t.Errorf("non-incremental refit fit/skipped = %d/%d, want 2/0",
			rep.BlocksFit, rep.BlocksSkipped)
	}
}

// TestSetTargetZeroToPositiveResetsCoefficient: a zeroed coefficient would
// leave a positive retarget without model support; SetTarget must reset it.
func TestSetTargetZeroToPositiveResetsCoefficient(t *testing.T) {
	tab := contingency.MustNew(nil, []int{2, 2})
	for _, obs := range [][]int{{0, 0}, {0, 0}, {1, 1}, {1, 1}, {0, 1}} {
		if err := tab.Observe(obs...); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewModel(nil, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	fam := contingency.NewVarSet(0, 1)
	if err := m.AddConstraint(Constraint{Family: fam, Values: []int{1, 0}, Target: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if c, _ := m.Coefficient(fam, []int{1, 0}); c != 0 {
		t.Fatalf("zero-target coefficient = %g, want 0", c)
	}
	if err := m.SetTarget(fam, []int{1, 0}, 0.1); err != nil {
		t.Fatal(err)
	}
	if c, _ := m.Coefficient(fam, []int{1, 0}); c != 1 {
		t.Fatalf("coefficient after zero->positive retarget = %g, want reset to 1", c)
	}
	rep, err := m.Fit(SolveOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("refit after zero->positive retarget did not converge (residual %g)", rep.Residual)
	}
	p, err := m.Prob(fam, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.1) > 1e-6 {
		t.Errorf("P(1,0) after retarget = %g, want 0.1", p)
	}
}
