package maxent

import (
	"fmt"
	"math"
	"sync/atomic"

	"pka/internal/contingency"
	"pka/internal/stats"
	"pka/internal/sumprod"
)

// Model is the product-form joint distribution of Eq. 12. Construct with
// NewModel, add constraints, then Fit. Until fitted, a0 is 1 and the model
// is unnormalized.
//
// Concurrency: mutation (AddConstraint, Fit, UnmarshalJSON) must be
// single-threaded and must not overlap queries. Query methods (Prob,
// Marginal, CellProb, Joint, ...) serve from an immutable compiled snapshot
// published through an atomic pointer, so any number of goroutines may
// query concurrently — even when the snapshot is stale and must be rebuilt,
// racing rebuilds are benign (each compiles the same coefficients).
type Model struct {
	names    []string
	cards    []int
	a0       float64
	families map[contingency.VarSet]*familyTerm
	cons     []Constraint
	conIdx   map[string]int
	// compiled caches the immutable inference engine for the current
	// coefficients; nil means no snapshot (invalidated by mutation). The
	// holder is a pointer so UnmarshalJSON's struct copy stays legal; Clone
	// gives the copy its own holder.
	compiled *atomic.Pointer[Compiled]
	// dirty tracks the families mutated (constraint added or retargeted)
	// since the last converged Fit; nil means unknown (everything dirty).
	// fitClean reports that the last Fit converged with this bookkeeping
	// intact — together they let an Incremental factored refit skip blocks
	// whose constraints did not move (see fitFactored).
	dirty    map[contingency.VarSet]bool
	fitClean bool
	// blockA0 caches each constraint block's a0 contribution from the last
	// factored fit, keyed by the block's member set. An Incremental refit
	// reuses a clean block's cached contribution bit-for-bit instead of
	// re-summing its cells, so the refit a0 stays exactly consistent with
	// the previous fit. Dense solves invalidate it (coefficients move
	// outside block bookkeeping); nil means no cache.
	blockA0 map[contingency.VarSet]float64
}

// familyTerm holds the dense coefficient array of one attribute family.
// Cells without an attached constraint keep coefficient 1 (the memo's
// Eq. 116: non-significant a's are replaced by 1).
type familyTerm struct {
	vars   []int
	coeffs []float64
}

// NewModel creates an empty model over the given attribute space.
// names may be nil (attributes are then labeled v0, v1, ...).
func NewModel(names []string, cards []int) (*Model, error) {
	if len(cards) == 0 {
		return nil, fmt.Errorf("maxent: model needs at least one attribute")
	}
	if len(cards) > contingency.MaxVars {
		return nil, fmt.Errorf("maxent: %d attributes exceeds limit %d",
			len(cards), contingency.MaxVars)
	}
	for i, c := range cards {
		if c < 1 {
			return nil, fmt.Errorf("maxent: attribute %d has cardinality %d", i, c)
		}
	}
	if names != nil && len(names) != len(cards) {
		return nil, fmt.Errorf("maxent: %d names for %d attributes", len(names), len(cards))
	}
	m := &Model{
		cards:    append([]int(nil), cards...),
		a0:       1,
		families: make(map[contingency.VarSet]*familyTerm),
		conIdx:   make(map[string]int),
		compiled: &atomic.Pointer[Compiled]{},
		dirty:    make(map[contingency.VarSet]bool),
	}
	if names == nil {
		m.names = make([]string, len(cards))
		for i := range m.names {
			m.names[i] = fmt.Sprintf("v%d", i)
		}
	} else {
		m.names = append([]string(nil), names...)
	}
	return m, nil
}

// R returns the number of attributes.
func (m *Model) R() int { return len(m.cards) }

// Cards returns a copy of the attribute cardinalities.
func (m *Model) Cards() []int { return append([]int(nil), m.cards...) }

// Names returns a copy of the attribute names.
func (m *Model) Names() []string { return append([]string(nil), m.names...) }

// NumCells returns the size of the joint space, saturating at MaxInt for
// wide attribute spaces whose cell count overflows — models over such
// spaces are served by the factored (block-decomposed) engine and never
// materialize the joint.
func (m *Model) NumCells() int {
	size := 1
	for _, c := range m.cards {
		if size > math.MaxInt/c {
			return math.MaxInt
		}
		size *= c
	}
	return size
}

// Constraints returns a copy of the registered constraints in insertion
// order.
func (m *Model) Constraints() []Constraint {
	return append([]Constraint(nil), m.cons...)
}

// NumConstraints returns how many constraints are registered.
func (m *Model) NumConstraints() int { return len(m.cons) }

// HasConstraint reports whether a constraint on exactly this family cell is
// registered.
func (m *Model) HasConstraint(family contingency.VarSet, values []int) bool {
	m.ensureConIdx()
	_, ok := m.conIdx[Constraint{Family: family, Values: values}.key()]
	return ok
}

// ensureConIdx builds the constraint lookup index on first use. A restored
// model leaves conIdx nil — snapshot loads never mutate, so paying for the
// index (and its string keys) up front would tax every cold start for a map
// most servers never touch. Mutation entry points call this before reading
// the map; like all Model mutation it assumes the single-writer contract.
func (m *Model) ensureConIdx() {
	if m.conIdx != nil {
		return
	}
	m.conIdx = make(map[string]int, len(m.cons))
	for i, c := range m.cons {
		m.conIdx[c.key()] = i
	}
}

// AddConstraint registers a constraint and allocates its coefficient.
// Adding the same family cell twice is an error — the discovery loop must
// never re-add a significant cell.
func (m *Model) AddConstraint(c Constraint) error {
	if err := c.validate(m.cards); err != nil {
		return err
	}
	m.ensureConIdx()
	k := c.key()
	if _, dup := m.conIdx[k]; dup {
		return fmt.Errorf("maxent: duplicate constraint on %s", c.Label(m.names))
	}
	if _, ok := m.families[c.Family]; !ok {
		members := c.Family.Members()
		size := 1
		for _, p := range members {
			size *= m.cards[p]
		}
		ft := &familyTerm{vars: members, coeffs: make([]float64, size)}
		for i := range ft.coeffs {
			ft.coeffs[i] = 1
		}
		m.families[c.Family] = ft
	}
	m.conIdx[k] = len(m.cons)
	m.cons = append(m.cons, Constraint{
		Family: c.Family,
		Values: append([]int(nil), c.Values...),
		Target: c.Target,
	})
	m.markDirty(c.Family)
	m.compiled.Store(nil) // coefficient layout changed; snapshot is stale
	return nil
}

// markDirty records that a family's constraints moved since the last
// converged fit. A nil dirty map means the bookkeeping is already
// "everything dirty" and stays that way.
func (m *Model) markDirty(family contingency.VarSet) {
	if m.dirty != nil {
		m.dirty[family] = true
	}
}

// SetTarget updates the target of an existing constraint in place — the
// streaming-refit mutation: observed counts moved but the constraint
// structure did not. Coefficients stay put, so the next Fit warm-starts
// from the previous solution instead of re-solving from uniform; only the
// compiled snapshot is invalidated. Retargeting a zero-target constraint to
// a positive target resets its coefficient to 1 (the zeroing update is not
// invertible, and a zero coefficient would leave the new target without
// model support).
func (m *Model) SetTarget(family contingency.VarSet, values []int, target float64) error {
	c := Constraint{Family: family, Values: values, Target: target}
	if err := c.validate(m.cards); err != nil {
		return err
	}
	m.ensureConIdx()
	i, ok := m.conIdx[c.key()]
	if !ok {
		return fmt.Errorf("maxent: no constraint on %s to retarget", c.Label(m.names))
	}
	if m.cons[i].Target == target {
		return nil
	}
	if m.cons[i].Target == 0 && target != 0 {
		ft := m.families[family]
		ft.coeffs[ft.offset(m.cards, m.cons[i].Values)] = 1
	}
	m.cons[i].Target = target
	m.markDirty(family)
	m.compiled.Store(nil)
	return nil
}

// AddFirstOrderConstraints registers the memo's Eq. 48 starting constraints:
// p_i = N_i / N for every value of every attribute of the counts backend
// (dense or sparse).
func (m *Model) AddFirstOrderConstraints(t contingency.Counts) error {
	if t.R() != m.R() {
		return fmt.Errorf("maxent: table has %d attributes, model has %d", t.R(), m.R())
	}
	if t.Total() == 0 {
		return fmt.Errorf("maxent: empty table")
	}
	for axis := 0; axis < t.R(); axis++ {
		if t.Card(axis) != m.cards[axis] {
			return fmt.Errorf("maxent: axis %d cardinality mismatch: table %d, model %d",
				axis, t.Card(axis), m.cards[axis])
		}
		fam := contingency.NewVarSet(axis)
		for v := 0; v < t.Card(axis); v++ {
			n, err := t.MarginalCount(fam, []int{v})
			if err != nil {
				return err
			}
			c := Constraint{
				Family: fam,
				Values: []int{v},
				Target: float64(n) / float64(t.Total()),
			}
			if err := m.AddConstraint(c); err != nil {
				return err
			}
		}
	}
	return nil
}

// famOffset converts family-cell values (ascending member order) to the
// family's dense coefficient offset.
func (ft *familyTerm) offset(cards []int, values []int) int {
	off := 0
	for i, p := range ft.vars {
		off = off*cards[p] + values[i]
	}
	return off
}

// Coefficient returns the a-value attached to the given family cell
// (1 when the family exists but the cell is unconstrained; an error when no
// constraint family covers those attributes).
func (m *Model) Coefficient(family contingency.VarSet, values []int) (float64, error) {
	ft, ok := m.families[family]
	if !ok {
		return 0, fmt.Errorf("maxent: no coefficient family %v", family)
	}
	if len(values) != len(ft.vars) {
		return 0, fmt.Errorf("maxent: %d values for family %v", len(values), family)
	}
	for i, p := range ft.vars {
		if values[i] < 0 || values[i] >= m.cards[p] {
			return 0, fmt.Errorf("maxent: value %d out of range for attribute %d", values[i], p)
		}
	}
	return ft.coeffs[ft.offset(m.cards, values)], nil
}

// A0 returns the normalizing coefficient a0 (Eq. 13); 1 before fitting.
func (m *Model) A0() float64 { return m.a0 }

// terms flattens the family coefficient arrays into sumprod terms, in
// deterministic family order so floating-point results are reproducible
// run to run.
func (m *Model) terms() []sumprod.Term {
	out := make([]sumprod.Term, 0, len(m.families))
	for _, vs := range sortedFamilies(m.families) {
		ft := m.families[vs]
		out = append(out, sumprod.Term{Vars: ft.vars, Coeffs: ft.coeffs})
	}
	return out
}

// evaluator builds the per-use Appendix B evaluator over the current
// coefficients — the original per-cell path, retained as the reference
// implementation the compiled engine is equivalence-tested against.
func (m *Model) evaluator() (*sumprod.Evaluator, error) {
	return sumprod.NewEvaluator(m.cards, m.terms())
}

// CellProb returns the normalized probability of one full cell: Eq. 12
// evaluated directly as a0 times the product of family coefficients.
func (m *Model) CellProb(cell []int) (float64, error) {
	c, err := m.Compile()
	if err != nil {
		return 0, err
	}
	return c.CellProb(cell)
}

// Prob returns the normalized probability that the attributes of `vars`
// take `values` (ascending member order) — a marginal of the model computed
// by the Appendix B recursion, never by materializing the joint.
func (m *Model) Prob(vars contingency.VarSet, values []int) (float64, error) {
	c, err := m.Compile()
	if err != nil {
		return 0, err
	}
	return c.Prob(vars, values)
}

// Marginal returns the model's marginal distribution over every cell of the
// family in one batch elimination sweep — see Compiled.Marginal. The scan
// loop of the discovery engine consumes this instead of per-cell Prob calls.
func (m *Model) Marginal(vars contingency.VarSet) ([]float64, error) {
	c, err := m.Compile()
	if err != nil {
		return nil, err
	}
	return c.Marginal(vars)
}

// Joint materializes the full normalized joint distribution in row-major
// order (attribute 0 slowest). Intended for small spaces and tests; it
// fails on factored models whose joint space exceeds maxDenseCells.
func (m *Model) Joint() ([]float64, error) {
	c, err := m.Compile()
	if err != nil {
		return nil, err
	}
	return c.Joint()
}

// Entropy returns H of the fitted joint in nats (Eq. 7).
func (m *Model) Entropy() (float64, error) {
	joint, err := m.Joint()
	if err != nil {
		return 0, err
	}
	return stats.Entropy(joint), nil
}

// Residual returns the largest |predicted - target| over all constraints —
// the convergence measure of Figure 4.
func (m *Model) Residual() (float64, error) {
	c, err := m.Compile()
	if err != nil {
		return 0, err
	}
	sum := c.Sum()
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		return 0, fmt.Errorf("maxent: degenerate model sum %g", sum)
	}
	worst := 0.0
	for _, cons := range m.cons {
		q := c.constraintRatio(cons, sum)
		if d := math.Abs(q - cons.Target); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// Clone returns a deep copy of the model, constraints and coefficients
// included. The discovery engine clones before speculative refits.
func (m *Model) Clone() *Model {
	cp := &Model{
		names:    append([]string(nil), m.names...),
		cards:    append([]int(nil), m.cards...),
		a0:       m.a0,
		families: make(map[contingency.VarSet]*familyTerm, len(m.families)),
		cons:     make([]Constraint, len(m.cons)),
	}
	for vs, ft := range m.families {
		cp.families[vs] = &familyTerm{
			vars:   append([]int(nil), ft.vars...),
			coeffs: append([]float64(nil), ft.coeffs...),
		}
	}
	for i, c := range m.cons {
		cp.cons[i] = Constraint{
			Family: c.Family,
			Values: append([]int(nil), c.Values...),
			Target: c.Target,
		}
	}
	// A nil conIdx (restored-from-snapshot model, index not yet demanded)
	// stays nil in the clone; ensureConIdx rebuilds it on first mutation.
	if m.conIdx != nil {
		cp.conIdx = make(map[string]int, len(m.conIdx))
		for k, v := range m.conIdx {
			cp.conIdx[k] = v
		}
	}
	if m.dirty != nil {
		cp.dirty = make(map[contingency.VarSet]bool, len(m.dirty))
		for vs := range m.dirty {
			cp.dirty[vs] = true
		}
	}
	if m.blockA0 != nil {
		cp.blockA0 = make(map[contingency.VarSet]float64, len(m.blockA0))
		for vs, a := range m.blockA0 {
			cp.blockA0[vs] = a
		}
	}
	cp.fitClean = m.fitClean
	// The compiled snapshot is immutable and matches the copied
	// coefficients, so the clone can share it until its next mutation —
	// but in its own holder, so invalidation never crosses models.
	cp.compiled = &atomic.Pointer[Compiled]{}
	cp.compiled.Store(m.compiled.Load())
	return cp
}

// ConstraintLabels returns the memo-style a-labels of all constraints in
// insertion order, for trace rendering (Table 2's column headers).
func (m *Model) ConstraintLabels() []string {
	out := make([]string, len(m.cons))
	for i, c := range m.cons {
		out[i] = c.Label(m.names)
	}
	return out
}
