package maxent

import (
	"errors"
	"fmt"
	"sync"

	"pka/internal/contingency"
	"pka/internal/sumprod"
)

// Compiled is an immutable snapshot of a model bound to a compiled
// sum-product engine: the separation of the mutable fitting model from the
// query engine. It is safe for concurrent use by any number of goroutines —
// coefficients are deep-copied at Compile time and scratch state is pooled —
// and every probability it returns is bit-identical to the equivalent
// Model method evaluated on the snapshot's coefficients.
//
// Snapshots come in two modes. Joint spaces up to denseModelCells compile
// one global engine (eng), exactly as before. Wider models compile in
// factored mode: one engine per constraint block (see blocks.go), with
// probabilities combined as products of per-block sums — no dense joint
// structure is ever allocated.
type Compiled struct {
	names  []string
	cards  []int
	a0     float64
	eng    *sumprod.Compiled // dense mode; nil in factored mode
	blocks []*compiledBlock  // factored mode; nil in dense mode
	// blockScratch pools a cell buffer sized to the widest block for the
	// factored per-cell paths (CellProb is called once per occupied cell
	// by goodness-of-fit and log-loss scoring).
	blockScratch sync.Pool
}

// compiledBlock is one constraint block's sub-engine. eng is an interface
// (see engine.go): in-process snapshots wrap a dense sumprod engine, the
// shard coordinator substitutes RPC clients — either way the combination
// loops below run unchanged, which is what keeps distributed answers
// bit-identical to local ones.
type compiledBlock struct {
	vars  []int // global attribute positions, ascending
	cards []int // cardinalities of vars
	local []int // local index per global position; -1 when not a member
	eng   BlockEngine
	sum   float64 // cached unnormalized block sum Σ Π coeffs
}

// Compile returns the model's compiled inference engine, building it from
// the current coefficients if no snapshot is cached. The cache is
// invalidated by AddConstraint and refreshed by every successful Fit, so a
// fitted model hands out an up-to-date engine for free.
//
// Concurrency: safe to call from any number of goroutines as long as no
// mutation (AddConstraint, Fit) is in flight — the snapshot is published
// through an atomic pointer, and concurrent rebuilds of a stale cache each
// compile the same coefficients, so whichever publication wins is correct.
func (m *Model) Compile() (*Compiled, error) {
	if c := m.compiled.Load(); c != nil {
		return c, nil
	}
	c := &Compiled{
		names: append([]string(nil), m.names...),
		cards: append([]int(nil), m.cards...),
		a0:    m.a0,
	}
	cells := m.NumCells()
	blocks, blockErr := []*compiledBlock(nil), error(nil)
	if cells > denseModelCells {
		blocks, blockErr = m.compileBlocks()
		if blockErr != nil && !(errors.Is(blockErr, errBlockTooDense) && cells <= maxDenseCells) {
			return nil, blockErr
		}
		// A too-dense block under the absolute ceiling falls through to
		// the dense engine, mirroring Fit's fallback.
	}
	if blocks != nil {
		c.blocks = blocks
		maxW := 0
		for _, b := range blocks {
			if len(b.vars) > maxW {
				maxW = len(b.vars)
			}
		}
		c.blockScratch.New = func() any {
			s := make([]int, maxW)
			return &s
		}
	} else {
		eng, err := sumprod.Compile(m.cards, m.terms())
		if err != nil {
			return nil, err
		}
		c.eng = eng
	}
	m.compiled.Store(c)
	return c, nil
}

// Factored reports whether the snapshot runs in factored (block-decomposed)
// mode — i.e. its joint space is too wide to materialize, so consumers must
// score over occupied cells instead of a dense joint walk.
func (c *Compiled) Factored() bool { return c.eng == nil }

// compileBlocks builds one sub-engine per constraint block of the model.
func (m *Model) compileBlocks() ([]*compiledBlock, error) {
	var out []*compiledBlock
	fams := m.sortedFamilyTerms()
	var ar blockArena
	for _, blk := range m.blocks() {
		b, err := m.buildBlock(blk, fams, &ar)
		if err != nil {
			return nil, err
		}
		if b.sum, err = b.eng.Sum(); err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// blockArena carves the per-block int buffers of one compilation out of
// chunked backing arrays — a model decomposes into many small blocks, and
// block compilation runs on the snapshot-restore cold-start path where a
// few allocations per block dominate the profile. Carved slices have
// len == cap and chunks are never reallocated, so handing out a new slice
// never moves one already handed out.
type blockArena struct {
	free []int
}

func (a *blockArena) take(n int) []int {
	if n == 0 {
		return nil
	}
	if len(a.free) < n {
		size := 1024
		if n > size {
			size = n
		}
		a.free = make([]int, size)
	}
	s := a.free[:n:n]
	a.free = a.free[n:]
	return s
}

// sortedFamilyTerms resolves the family map into deterministic mask order
// once, so per-block compilation iterates a slice instead of re-sorting
// the map for every block.
func (m *Model) sortedFamilyTerms() []*familyTerm {
	out := make([]*familyTerm, 0, len(m.families))
	for _, vs := range sortedFamilies(m.families) {
		out = append(out, m.families[vs])
	}
	return out
}

// buildBlock compiles one constraint block's sub-engine from the current
// coefficients, leaving the cached block sum unset: compileBlocks
// accumulates it fresh, the snapshot restore path injects the stored value
// so the restored engine reproduces the saved one bit for bit. fams is the
// caller's sortedFamilyTerms() — hoisted out because it is shared by every
// block of one compilation.
func (m *Model) buildBlock(blk []int, fams []*familyTerm, ar *blockArena) (*compiledBlock, error) {
	if _, err := m.blockDenseSize(blk); err != nil {
		return nil, err
	}
	// One arena carve serves vars, cards, and local.
	buf := ar.take(2*len(blk) + len(m.cards))
	b := &compiledBlock{
		vars:  buf[:len(blk):len(blk)],
		cards: buf[len(blk) : 2*len(blk) : 2*len(blk)],
		local: buf[2*len(blk):],
	}
	copy(b.vars, blk)
	for i := range b.local {
		b.local[i] = -1
	}
	for i, p := range blk {
		b.cards[i] = m.cards[p]
		b.local[p] = i
	}
	nt, nv := 0, 0
	for _, ft := range fams {
		if b.local[ft.vars[0]] >= 0 {
			nt++
			nv += len(ft.vars)
		}
	}
	terms := make([]sumprod.Term, 0, nt)
	lvbuf := ar.take(nv)
	for _, ft := range fams {
		if b.local[ft.vars[0]] < 0 {
			continue
		}
		lv := lvbuf[:len(ft.vars):len(ft.vars)]
		lvbuf = lvbuf[len(ft.vars):]
		for i, p := range ft.vars {
			if b.local[p] < 0 {
				return nil, fmt.Errorf("maxent: family %v straddles blocks",
					contingency.NewVarSet(ft.vars...))
			}
			lv[i] = b.local[p]
		}
		terms = append(terms, sumprod.Term{Vars: lv, Coeffs: ft.coeffs})
	}
	eng, err := sumprod.Compile(b.cards, terms)
	if err != nil {
		return nil, err
	}
	b.eng = localBlock{eng}
	return b, nil
}

// R returns the number of attributes.
func (c *Compiled) R() int { return len(c.cards) }

// Cards returns a copy of the attribute cardinalities.
func (c *Compiled) Cards() []int { return append([]int(nil), c.cards...) }

// Names returns a copy of the attribute names.
func (c *Compiled) Names() []string { return append([]string(nil), c.names...) }

// A0 returns the snapshot's normalizing coefficient.
func (c *Compiled) A0() float64 { return c.a0 }

// checkCell validates (vars, values) against the attribute space.
func (c *Compiled) checkCell(vars contingency.VarSet, values []int) ([]int, error) {
	members := vars.Members()
	if len(members) != len(values) {
		return nil, fmt.Errorf("maxent: %d values for attribute set %v", len(values), vars)
	}
	if len(members) > 0 && members[len(members)-1] >= len(c.cards) {
		return nil, fmt.Errorf("maxent: attribute set %v exceeds %d attributes", vars, len(c.cards))
	}
	for i, p := range members {
		if values[i] < 0 || values[i] >= c.cards[p] {
			return nil, fmt.Errorf("maxent: value %d out of range for attribute %d", values[i], p)
		}
	}
	return members, nil
}

// Prob returns the normalized probability that the attributes of vars take
// values — one pooled-scratch elimination sweep, no per-call engine build.
// In factored mode the sweep runs per block touched by the pins; untouched
// blocks contribute their cached sums.
func (c *Compiled) Prob(vars contingency.VarSet, values []int) (float64, error) {
	members, err := c.checkCell(vars, values)
	if err != nil {
		return 0, err
	}
	if c.eng != nil {
		return c.a0 * c.eng.SumPinned(members, values), nil
	}
	res := c.a0
	lv := make([]int, 0, len(members))
	lvals := make([]int, 0, len(members))
	for _, b := range c.blocks {
		lv, lvals = lv[:0], lvals[:0]
		for i, p := range members {
			if li := b.local[p]; li >= 0 {
				lv = append(lv, li)
				lvals = append(lvals, values[i])
			}
		}
		if len(lv) == 0 {
			res *= b.sum
		} else {
			s, err := b.eng.SumPinned(lv, lvals)
			if err != nil {
				return 0, err
			}
			res *= s
		}
	}
	return res, nil
}

// Marginal returns the model's full marginal distribution over the family:
// every cell's probability, dense row-major over the members ascending
// (first member slowest), computed in a single batch elimination sweep.
// Each entry is bit-identical to the Prob call for that cell.
func (c *Compiled) Marginal(vars contingency.VarSet) ([]float64, error) {
	members := vars.Members()
	if len(members) == 0 {
		return nil, fmt.Errorf("maxent: empty attribute set for marginal")
	}
	if members[len(members)-1] >= len(c.cards) {
		return nil, fmt.Errorf("maxent: attribute set %v exceeds %d attributes", vars, len(c.cards))
	}
	if c.eng == nil {
		return c.factoredMarginal(members, nil)
	}
	out, err := c.eng.Marginal(members)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = c.a0 * out[i]
	}
	return out, nil
}

// MarginalGiven returns the joint probability of every cell of vars together
// with the clamped evidence: fixed[v] >= 0 pins attribute v (which must not
// be a member of vars), -1 leaves it summed over. One batch sweep computes
// the whole conditional slice's numerators.
func (c *Compiled) MarginalGiven(vars contingency.VarSet, fixed []int) ([]float64, error) {
	members := vars.Members()
	if len(members) == 0 {
		return nil, fmt.Errorf("maxent: empty attribute set for marginal")
	}
	if members[len(members)-1] >= len(c.cards) {
		return nil, fmt.Errorf("maxent: attribute set %v exceeds %d attributes", vars, len(c.cards))
	}
	for v := 0; v < len(fixed) && v < len(c.cards); v++ {
		if fixed[v] >= c.cards[v] {
			return nil, fmt.Errorf("maxent: value %d out of range for attribute %d", fixed[v], v)
		}
	}
	if c.eng == nil {
		return c.factoredMarginal(members, fixed)
	}
	out, err := c.eng.MarginalFixed(members, fixed)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = c.a0 * out[i]
	}
	return out, nil
}

// factoredMarginal assembles a (possibly clamped) batch marginal in
// factored mode: each block touched by the family computes its own dense
// sub-marginal in one sweep, blocks touched only by clamps contribute a
// pinned scalar sum, untouched blocks their cached sums, and the family's
// row-major result is the outer product of the parts.
func (c *Compiled) factoredMarginal(members []int, fixed []int) ([]float64, error) {
	scalar := c.a0
	type part struct {
		midx []int // indices into members served by this block
		dims []int // cardinalities of those members
		arr  []float64
	}
	var parts []part
	for _, b := range c.blocks {
		var lm, midx, dims []int
		for i, p := range members {
			if li := b.local[p]; li >= 0 {
				lm = append(lm, li)
				midx = append(midx, i)
				dims = append(dims, c.cards[p])
			}
		}
		var localFixed []int
		for li, p := range b.vars {
			if p < len(fixed) && fixed[p] >= 0 {
				if localFixed == nil {
					localFixed = make([]int, len(b.vars))
					for j := range localFixed {
						localFixed[j] = -1
					}
				}
				localFixed[li] = fixed[p]
			}
		}
		switch {
		case len(lm) > 0:
			arr, err := b.eng.MarginalFixed(lm, localFixed)
			if err != nil {
				return nil, err
			}
			parts = append(parts, part{midx: midx, dims: dims, arr: arr})
		case localFixed != nil:
			s, err := b.eng.SumFixed(localFixed)
			if err != nil {
				return nil, err
			}
			scalar *= s
		default:
			scalar *= b.sum
		}
	}
	size := 1
	for _, p := range members {
		size *= c.cards[p]
	}
	out := make([]float64, size)
	values := make([]int, len(members))
	for i := 0; i < size; i++ {
		v := scalar
		for _, pt := range parts {
			off := 0
			for k, mi := range pt.midx {
				off = off*pt.dims[k] + values[mi]
			}
			v *= pt.arr[off]
		}
		out[i] = v
		for j := len(members) - 1; j >= 0; j-- {
			values[j]++
			if values[j] < c.cards[members[j]] {
				break
			}
			values[j] = 0
		}
	}
	return out, nil
}

// CellProb returns the normalized probability of one full cell by direct
// product evaluation, multiplying the family coefficients onto a0 in the
// same order Model.CellProb does.
func (c *Compiled) CellProb(cell []int) (float64, error) {
	if len(cell) != len(c.cards) {
		return 0, fmt.Errorf("maxent: cell has %d coordinates, model has %d attributes",
			len(cell), len(c.cards))
	}
	for i, v := range cell {
		if v < 0 || v >= c.cards[i] {
			return 0, fmt.Errorf("maxent: coordinate %d = %d out of range", i, v)
		}
	}
	if c.eng != nil {
		return c.eng.CellValue(c.a0, cell), nil
	}
	scratch := c.blockScratch.Get().(*[]int)
	p := c.a0
	for _, b := range c.blocks {
		localCell := (*scratch)[:len(b.vars)]
		for li, gp := range b.vars {
			localCell[li] = cell[gp]
		}
		var err error
		if p, err = b.eng.CellValue(p, localCell); err != nil {
			c.blockScratch.Put(scratch)
			return 0, err
		}
	}
	c.blockScratch.Put(scratch)
	return p, nil
}

// MaxCell returns the most probable full cell agreeing with fixed
// (fixed[i] >= 0 pins attribute i; any negative entry leaves it free; nil
// leaves every attribute free) and that cell's normalized probability —
// the MPE/MAP primitive. Ties break toward lexicographically smaller
// cells. Dense snapshots enumerate the pinned joint space; factored
// snapshots take the argmax independently per block — exact, because the
// distribution is a product over blocks — so wide-model MPE costs the sum
// of the block sizes, never the joint.
func (c *Compiled) MaxCell(fixed []int) ([]int, float64, error) {
	r := len(c.cards)
	if fixed == nil {
		fixed = make([]int, r)
		for i := range fixed {
			fixed[i] = -1
		}
	}
	if len(fixed) != r {
		return nil, 0, fmt.Errorf("maxent: %d pins for %d attributes", len(fixed), r)
	}
	for i, v := range fixed {
		if v >= c.cards[i] {
			return nil, 0, fmt.Errorf("maxent: value %d out of range for attribute %d", v, i)
		}
	}
	best := make([]int, r)
	if c.eng != nil {
		cell := make([]int, r)
		var free []int
		for i, v := range fixed {
			if v >= 0 {
				cell[i] = v
			} else {
				free = append(free, i)
			}
		}
		bestP := -1.0
		for {
			if p := c.eng.CellValue(c.a0, cell); p > bestP {
				bestP = p
				copy(best, cell)
			}
			i := len(free) - 1
			for i >= 0 {
				cell[free[i]]++
				if cell[free[i]] < c.cards[free[i]] {
					break
				}
				cell[free[i]] = 0
				i--
			}
			if i < 0 || len(free) == 0 {
				break
			}
		}
		return best, bestP, nil
	}
	// Per-block argmax in local row-major order: within a block the local
	// order is the block's attributes ascending, so ArgmaxFixed's tie-break
	// keeps the block-lexicographically smallest maximizer — which composes
	// to the globally lexicographically smallest one, blocks being
	// independent.
	for _, b := range c.blocks {
		localFixed := make([]int, len(b.vars))
		for li, p := range b.vars {
			localFixed[li] = -1
			if fixed[p] >= 0 {
				localFixed[li] = fixed[p]
			}
		}
		bestLocal, err := b.eng.ArgmaxFixed(localFixed)
		if err != nil {
			return nil, 0, err
		}
		for li, p := range b.vars {
			best[p] = bestLocal[li]
		}
	}
	p, err := c.CellProb(best)
	if err != nil {
		return nil, 0, err
	}
	return best, p, nil
}

// Joint materializes the full normalized joint distribution in row-major
// order (attribute 0 slowest). Intended for small spaces, validation, and
// tests. Factored-mode snapshots materialize by cell-probability products
// while the space fits under maxDenseCells and refuse beyond it — wide
// models must be queried through marginals instead.
func (c *Compiled) Joint() ([]float64, error) {
	if c.eng != nil {
		joint := c.eng.FullJoint()
		for i := range joint {
			joint[i] *= c.a0
		}
		return joint, nil
	}
	size := 1
	for _, card := range c.cards {
		if size > maxDenseCells/card {
			return nil, fmt.Errorf("maxent: joint space too large to materialize (factored model over %d attributes)", len(c.cards))
		}
		size *= card
	}
	joint := make([]float64, size)
	cell := make([]int, len(c.cards))
	for i := range joint {
		p, err := c.CellProb(cell)
		if err != nil {
			return nil, err
		}
		joint[i] = p
		for j := len(cell) - 1; j >= 0; j-- {
			cell[j]++
			if cell[j] < c.cards[j] {
				break
			}
			cell[j] = 0
		}
	}
	return joint, nil
}

// Sum returns the unnormalized total Σ Π coefficients (1/a0 after a fit);
// in factored mode, the product of the block sums.
func (c *Compiled) Sum() float64 {
	if c.eng != nil {
		return c.eng.Sum()
	}
	s := 1.0
	for _, b := range c.blocks {
		s *= b.sum
	}
	return s
}

// constraintRatio returns the model's predicted probability of a constraint
// cell — the convergence measure Residual compares against targets. sum is
// the caller's precomputed Sum(), shared across constraints so the dense
// branch does not repeat the full elimination sweep per constraint.
func (c *Compiled) constraintRatio(cons Constraint, sum float64) float64 {
	members := cons.Family.Members()
	if c.eng != nil {
		return c.eng.SumPinned(members, cons.Values) / sum
	}
	ratio := 1.0
	lv := make([]int, 0, len(members))
	lvals := make([]int, 0, len(members))
	for _, b := range c.blocks {
		lv, lvals = lv[:0], lvals[:0]
		for i, p := range members {
			if li := b.local[p]; li >= 0 {
				lv = append(lv, li)
				lvals = append(lvals, cons.Values[i])
			}
		}
		if len(lv) > 0 {
			// Fitting only ever runs over in-process engines, whose
			// SumPinned cannot fail.
			s, _ := b.eng.SumPinned(lv, lvals)
			ratio *= s / b.sum
		}
	}
	return ratio
}
