package maxent

import (
	"fmt"

	"pka/internal/contingency"
	"pka/internal/sumprod"
)

// Compiled is an immutable snapshot of a model bound to a compiled
// sum-product engine: the separation of the mutable fitting model from the
// query engine. It is safe for concurrent use by any number of goroutines —
// coefficients are deep-copied at Compile time and scratch state is pooled —
// and every probability it returns is bit-identical to the equivalent
// Model method evaluated on the snapshot's coefficients.
type Compiled struct {
	names []string
	cards []int
	a0    float64
	eng   *sumprod.Compiled
}

// Compile returns the model's compiled inference engine, building it from
// the current coefficients if no snapshot is cached. The cache is
// invalidated by AddConstraint and refreshed by every successful Fit, so a
// fitted model hands out an up-to-date engine for free.
//
// Concurrency: safe to call from any number of goroutines as long as no
// mutation (AddConstraint, Fit) is in flight — the snapshot is published
// through an atomic pointer, and concurrent rebuilds of a stale cache each
// compile the same coefficients, so whichever publication wins is correct.
func (m *Model) Compile() (*Compiled, error) {
	if c := m.compiled.Load(); c != nil {
		return c, nil
	}
	eng, err := sumprod.Compile(m.cards, m.terms())
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		names: append([]string(nil), m.names...),
		cards: append([]int(nil), m.cards...),
		a0:    m.a0,
		eng:   eng,
	}
	m.compiled.Store(c)
	return c, nil
}

// R returns the number of attributes.
func (c *Compiled) R() int { return len(c.cards) }

// Cards returns a copy of the attribute cardinalities.
func (c *Compiled) Cards() []int { return append([]int(nil), c.cards...) }

// Names returns a copy of the attribute names.
func (c *Compiled) Names() []string { return append([]string(nil), c.names...) }

// A0 returns the snapshot's normalizing coefficient.
func (c *Compiled) A0() float64 { return c.a0 }

// checkCell validates (vars, values) against the attribute space.
func (c *Compiled) checkCell(vars contingency.VarSet, values []int) ([]int, error) {
	members := vars.Members()
	if len(members) != len(values) {
		return nil, fmt.Errorf("maxent: %d values for attribute set %v", len(values), vars)
	}
	if len(members) > 0 && members[len(members)-1] >= len(c.cards) {
		return nil, fmt.Errorf("maxent: attribute set %v exceeds %d attributes", vars, len(c.cards))
	}
	for i, p := range members {
		if values[i] < 0 || values[i] >= c.cards[p] {
			return nil, fmt.Errorf("maxent: value %d out of range for attribute %d", values[i], p)
		}
	}
	return members, nil
}

// Prob returns the normalized probability that the attributes of vars take
// values — one pooled-scratch elimination sweep, no per-call engine build.
func (c *Compiled) Prob(vars contingency.VarSet, values []int) (float64, error) {
	members, err := c.checkCell(vars, values)
	if err != nil {
		return 0, err
	}
	return c.a0 * c.eng.SumPinned(members, values), nil
}

// Marginal returns the model's full marginal distribution over the family:
// every cell's probability, dense row-major over the members ascending
// (first member slowest), computed in a single batch elimination sweep.
// Each entry is bit-identical to the Prob call for that cell.
func (c *Compiled) Marginal(vars contingency.VarSet) ([]float64, error) {
	members := vars.Members()
	if len(members) == 0 {
		return nil, fmt.Errorf("maxent: empty attribute set for marginal")
	}
	if members[len(members)-1] >= len(c.cards) {
		return nil, fmt.Errorf("maxent: attribute set %v exceeds %d attributes", vars, len(c.cards))
	}
	out, err := c.eng.Marginal(members)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = c.a0 * out[i]
	}
	return out, nil
}

// MarginalGiven returns the joint probability of every cell of vars together
// with the clamped evidence: fixed[v] >= 0 pins attribute v (which must not
// be a member of vars), -1 leaves it summed over. One batch sweep computes
// the whole conditional slice's numerators.
func (c *Compiled) MarginalGiven(vars contingency.VarSet, fixed []int) ([]float64, error) {
	members := vars.Members()
	if len(members) == 0 {
		return nil, fmt.Errorf("maxent: empty attribute set for marginal")
	}
	if members[len(members)-1] >= len(c.cards) {
		return nil, fmt.Errorf("maxent: attribute set %v exceeds %d attributes", vars, len(c.cards))
	}
	for v := 0; v < len(fixed) && v < len(c.cards); v++ {
		if fixed[v] >= c.cards[v] {
			return nil, fmt.Errorf("maxent: value %d out of range for attribute %d", fixed[v], v)
		}
	}
	out, err := c.eng.MarginalFixed(members, fixed)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = c.a0 * out[i]
	}
	return out, nil
}

// CellProb returns the normalized probability of one full cell by direct
// product evaluation, multiplying the family coefficients onto a0 in the
// same order Model.CellProb does.
func (c *Compiled) CellProb(cell []int) (float64, error) {
	if len(cell) != len(c.cards) {
		return 0, fmt.Errorf("maxent: cell has %d coordinates, model has %d attributes",
			len(cell), len(c.cards))
	}
	for i, v := range cell {
		if v < 0 || v >= c.cards[i] {
			return 0, fmt.Errorf("maxent: coordinate %d = %d out of range", i, v)
		}
	}
	return c.eng.CellValue(c.a0, cell), nil
}

// Joint materializes the full normalized joint distribution in row-major
// order. Intended for small spaces, validation, and tests.
func (c *Compiled) Joint() []float64 {
	joint := c.eng.FullJoint()
	for i := range joint {
		joint[i] *= c.a0
	}
	return joint
}

// Sum returns the unnormalized total Σ Π coefficients (1/a0 after a fit).
func (c *Compiled) Sum() float64 { return c.eng.Sum() }

// sumPinnedRatio returns SumPinned/sum — the predicted constraint
// probability used by Residual.
func (c *Compiled) sumPinnedRatio(cons Constraint, sum float64) float64 {
	return c.eng.SumPinned(cons.Family.Members(), cons.Values) / sum
}
