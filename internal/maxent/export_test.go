package maxent

import (
	"math"
	"strings"
	"testing"

	"pka/internal/contingency"
)

// exportRestore round-trips a fitted model through its serializable state.
func exportRestore(t *testing.T, m *Model) *Model {
	t.Helper()
	st, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RestoreModel(st)
	if err != nil {
		t.Fatal(err)
	}
	return rm
}

// TestRestoreModelBitIdentical checks the restored model reproduces the
// saved one's probabilities exactly — the whole point of shipping solved
// coefficients (and block sums) instead of refitting.
func TestRestoreModelBitIdentical(t *testing.T) {
	m := firstOrderModel(t)
	rm := exportRestore(t, m)
	for pos := 0; pos < m.R(); pos++ {
		for v := 0; v < m.cards[pos]; v++ {
			vs := contingency.NewVarSet(pos)
			want, err := m.Prob(vs, []int{v})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rm.Prob(vs, []int{v})
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Errorf("attr %d=%d: restored %v != live %v", pos, v, got, want)
			}
		}
	}
}

// TestRestoredModelMutable checks the lazy constraint index: a restored
// model defers building conIdx until a mutation needs it, and every
// mutation entry point still behaves — lookup, duplicate detection,
// retargeting, and refit.
func TestRestoredModelMutable(t *testing.T) {
	m := firstOrderModel(t)
	rm := exportRestore(t, m)

	fam := contingency.NewVarSet(0)
	if !rm.HasConstraint(fam, []int{0}) {
		t.Error("restored model lost a constraint")
	}
	if rm.HasConstraint(contingency.NewVarSet(0, 1), []int{0, 0}) {
		t.Error("restored model invented a constraint")
	}

	dup := rm.cons[0]
	if err := rm.AddConstraint(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate AddConstraint on restored model: %v", err)
	}
	// Add a new second-order constraint at the model's own probability for
	// that cell, so the enlarged system stays consistent and refittable.
	p, err := rm.Prob(contingency.NewVarSet(0, 1), []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 1), Values: []int{0, 0}, Target: p,
	}); err != nil {
		t.Fatal(err)
	}
	if err := rm.SetTarget(fam, []int{0}, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}

	// Clone of a not-yet-mutated restored model must preserve behavior too.
	cl := exportRestore(t, m).Clone()
	if !cl.HasConstraint(fam, []int{0}) {
		t.Error("clone of restored model lost a constraint")
	}
}

// TestRestoreModelValidation drives malformed state through RestoreModel:
// restore is bulk construction, but it must reject everything the
// AddConstraint path would.
func TestRestoreModelValidation(t *testing.T) {
	fresh := func(t *testing.T) *ModelState {
		st, err := firstOrderModel(t).Export()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cases := []struct {
		name   string
		mutate func(*ModelState)
		want   string
	}{
		{"duplicate constraint", func(st *ModelState) {
			st.Constraints = append(st.Constraints, st.Constraints[0])
		}, "duplicate constraint"},
		{"constraint out of range", func(st *ModelState) {
			st.Constraints[0].Values = []int{99}
		}, "out of range"},
		{"unreferenced family", func(st *ModelState) {
			st.Families = append(st.Families, FamilyState{
				Vars: []int{0, 1}, Coeffs: make([]float64, 6),
			})
		}, "carry no constraints"},
		{"orphan constraint", func(st *ModelState) {
			st.Families = st.Families[1:]
		}, "no coefficients"},
		{"coefficient count mismatch", func(st *ModelState) {
			st.Families[0].Coeffs = st.Families[0].Coeffs[1:]
		}, "coefficients, want"},
		{"family members unsorted", func(st *ModelState) {
			st.Families[0].Vars = []int{1, 0}
		}, "not ascending"},
		{"zero a0", func(st *ModelState) { st.A0 = 0 }, "degenerate a0"},
		{"nan a0 rejected", func(st *ModelState) { st.A0 = math.NaN() }, "degenerate a0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := fresh(t)
			tc.mutate(st)
			_, err := RestoreModel(st)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestRestoreFactoredBlockSums checks factored round-trips pin per-block
// normalizer state: the restored compiled engine carries the exact stored
// sums, and degenerate sums are rejected.
func TestRestoreFactoredBlockSums(t *testing.T) {
	old := denseModelCells
	denseModelCells = 4 // force the factored path on a small model
	defer func() { denseModelCells = old }()

	m := firstOrderModel(t)
	st, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Factored {
		t.Fatal("expected factored export under lowered dense ceiling")
	}
	rm, err := RestoreModel(st)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Prob(contingency.NewVarSet(0, 1), []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rm.Prob(contingency.NewVarSet(0, 1), []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Errorf("factored restore: %v != %v", got, want)
	}

	st.Blocks[0].Sum = math.Inf(1)
	if _, err := RestoreModel(st); err == nil || !strings.Contains(err.Error(), "degenerate sum") {
		t.Errorf("degenerate block sum accepted: %v", err)
	}
	st.Blocks[0].Sum = 1
	st.Blocks = st.Blocks[:len(st.Blocks)-1]
	if _, err := RestoreModel(st); err == nil || !strings.Contains(err.Error(), "blocks") {
		t.Errorf("block structure mismatch accepted: %v", err)
	}
}
