package maxent

import (
	"sync"
	"testing"

	"pka/internal/contingency"
)

// fittedMemoModel builds and fits the memo's first-order model plus the
// significant N^AC_12 constraint — a realistic fitted coefficient state.
func fittedMemoModel(t testing.TB) *Model {
	t.Helper()
	m, err := NewModel([]string{"A", "B", "C"}, []int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	targets := [][]float64{
		{1290.0 / 3428, 1133.0 / 3428, 1005.0 / 3428},
		{433.0 / 3428, 2995.0 / 3428},
		{1780.0 / 3428, 1648.0 / 3428},
	}
	for axis, probs := range targets {
		for v, p := range probs {
			err := m.AddConstraint(Constraint{
				Family: contingency.NewVarSet(axis),
				Values: []int{v},
				Target: p,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	err = m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 2),
		Values: []int{0, 1},
		Target: 750.0 / 3428,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("memo model did not converge")
	}
	return m
}

// TestCompiledProbBitIdenticalToPerCellPath: the compiled engine must
// reproduce the original rebuild-an-evaluator-per-call path bit for bit,
// for single cells and for whole batch marginals — the invariant that keeps
// discovery output unchanged by the refactor.
func TestCompiledProbBitIdenticalToPerCellPath(t *testing.T) {
	m := fittedMemoModel(t)
	ev, err := m.evaluator() // the reference per-cell path
	if err != nil {
		t.Fatal(err)
	}
	cards := m.Cards()
	r := m.R()
	for mask := 1; mask < 1<<r; mask++ {
		var members []int
		var fam contingency.VarSet
		for v := 0; v < r; v++ {
			if mask&(1<<v) != 0 {
				members = append(members, v)
				fam = fam.Add(v)
			}
		}
		marg, err := m.Marginal(fam)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]int, len(members))
		pinned := make([]int, r)
		for idx := 0; ; idx++ {
			for i := range pinned {
				pinned[i] = -1
			}
			for i, p := range members {
				pinned[p] = values[i]
			}
			want := m.A0() * ev.SumFixed(pinned)
			got, err := m.Prob(fam, values)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("family %v cell %v: Prob = %x, per-cell path %x", fam, values, got, want)
			}
			if marg[idx] != want {
				t.Fatalf("family %v cell %v: Marginal[%d] = %x, per-cell path %x",
					fam, values, idx, marg[idx], want)
			}
			i := len(members) - 1
			for i >= 0 {
				values[i]++
				if values[i] < cards[members[i]] {
					break
				}
				values[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	}
	// Full joint and per-cell direct evaluation agree too.
	joint, err := m.Joint()
	if err != nil {
		t.Fatal(err)
	}
	ref := ev.FullJoint()
	cell := make([]int, r)
	for off := range ref {
		rem := off
		for v := r - 1; v >= 0; v-- {
			cell[v] = rem % cards[v]
			rem /= cards[v]
		}
		if want := ref[off] * m.A0(); joint[off] != want {
			t.Errorf("Joint[%d] = %x, want %x", off, joint[off], want)
		}
	}
	_ = cell
}

// TestCompileInvalidation: AddConstraint and Fit must refresh the snapshot
// so queries never serve stale coefficients.
func TestCompileInvalidation(t *testing.T) {
	m := fittedMemoModel(t)
	c1, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c1b, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c1b {
		t.Error("Compile did not cache the snapshot")
	}
	before, err := m.Prob(contingency.NewVarSet(0, 1), []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	err = m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 1),
		Values: []int{0, 0},
		Target: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Error("AddConstraint did not invalidate the snapshot")
	}
	if rep, err := m.Fit(SolveOptions{}); err != nil || !rep.Converged {
		t.Fatalf("refit: %v (converged %v)", err, rep != nil && rep.Converged)
	}
	c3, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c2 {
		t.Error("Fit did not refresh the snapshot")
	}
	after, err := m.Prob(contingency.NewVarSet(0, 1), []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Error("constrained probability unchanged after refit; stale snapshot suspected")
	}
	if diff := after - 0.10; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("refit probability %g, want ~0.10", after)
	}
	// The old snapshot still answers with its frozen coefficients.
	if p, err := c1.Prob(contingency.NewVarSet(0, 1), []int{0, 0}); err != nil || p != before {
		t.Errorf("frozen snapshot moved: %g -> %g (err %v)", before, p, err)
	}
}

// TestCloneSharesSnapshotSafely: a clone shares the immutable snapshot but
// diverges after its own mutation.
func TestCloneSharesSnapshotSafely(t *testing.T) {
	m := fittedMemoModel(t)
	cp := m.Clone()
	pm, err := m.Prob(contingency.NewVarSet(1), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := cp.Prob(contingency.NewVarSet(1), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if pm != pc {
		t.Errorf("clone diverged before mutation: %x vs %x", pm, pc)
	}
	err = cp.AddConstraint(Constraint{
		Family: contingency.NewVarSet(1, 2),
		Values: []int{0, 0},
		Target: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := cp.Fit(SolveOptions{}); err != nil || !rep.Converged {
		t.Fatalf("clone refit: %v", err)
	}
	pm2, err := m.Prob(contingency.NewVarSet(1), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if pm2 != pm {
		t.Errorf("mutating the clone changed the original: %x -> %x", pm, pm2)
	}
}

// TestCompiledConcurrentQueries hammers one fitted model from many
// goroutines (run with -race): all query paths share the snapshot.
func TestCompiledConcurrentQueries(t *testing.T) {
	m := fittedMemoModel(t)
	fam := contingency.NewVarSet(0, 2)
	wantProb, err := m.Prob(fam, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantMarg, err := m.Marginal(fam)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				switch (g + i) % 3 {
				case 0:
					p, err := m.Prob(fam, []int{0, 1})
					if err != nil || p != wantProb {
						errs <- "Prob mismatch"
						return
					}
				case 1:
					marg, err := m.Marginal(fam)
					if err != nil {
						errs <- err.Error()
						return
					}
					for j := range marg {
						if marg[j] != wantMarg[j] {
							errs <- "Marginal mismatch"
							return
						}
					}
				default:
					if _, err := m.CellProb([]int{0, 0, 1}); err != nil {
						errs <- err.Error()
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestConcurrentCompileOnStaleSnapshot: queries hitting a model whose
// snapshot was invalidated (AddConstraint after Fit) race to rebuild it;
// the atomic publication must keep this safe (run with -race) and every
// caller must see the same coefficients.
func TestConcurrentCompileOnStaleSnapshot(t *testing.T) {
	m := fittedMemoModel(t)
	err := m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 1),
		Values: []int{0, 0},
		Target: 0.07,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot is now stale (nil); fan out queries that all rebuild it.
	fam := contingency.NewVarSet(0, 2)
	want, err := m.Prob(fam, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Invalidate again so the goroutines really race on the rebuild.
	err = m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 1),
		Values: []int{1, 0},
		Target: 0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p, err := m.Prob(fam, []int{0, 1})
				if err != nil || p != want {
					errs <- "stale-snapshot rebuild diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

func TestCompiledValidationErrors(t *testing.T) {
	m := fittedMemoModel(t)
	c, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prob(contingency.NewVarSet(0), []int{0, 1}); err == nil {
		t.Error("value-count mismatch accepted")
	}
	if _, err := c.Prob(contingency.NewVarSet(7), []int{0}); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := c.Prob(contingency.NewVarSet(0), []int{5}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := c.Marginal(contingency.VarSet{}); err == nil {
		t.Error("empty marginal family accepted")
	}
	if _, err := c.Marginal(contingency.NewVarSet(9)); err == nil {
		t.Error("out-of-range marginal family accepted")
	}
	if _, err := c.MarginalGiven(contingency.NewVarSet(0), []int{0, -1, -1}); err == nil {
		t.Error("kept+clamped attribute accepted")
	}
	if _, err := c.MarginalGiven(contingency.NewVarSet(0), []int{-1, 9, -1}); err == nil {
		t.Error("out-of-range clamp accepted")
	}
	if _, err := c.CellProb([]int{0}); err == nil {
		t.Error("short cell accepted")
	}
	if _, err := c.CellProb([]int{9, 0, 0}); err == nil {
		t.Error("out-of-range cell accepted")
	}
}
