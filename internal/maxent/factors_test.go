package maxent

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUpdateFactorsInterior(t *testing.T) {
	f, g, err := updateFactors(0.2, 0.4, "c")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-2) > 1e-12 {
		t.Errorf("f = %g, want 2", f)
	}
	if math.Abs(g-0.75) > 1e-12 {
		t.Errorf("g = %g, want 0.6/0.8 = 0.75", g)
	}
	// Mass conservation: f·q + g·(1-q) = 1.
	if v := f*0.2 + g*0.8; math.Abs(v-1) > 1e-12 {
		t.Errorf("mass after update = %g", v)
	}
}

func TestUpdateFactorsFixedPoints(t *testing.T) {
	f, g, err := updateFactors(0.3, 0.3, "c")
	if err != nil || f != 1 || g != 1 {
		t.Errorf("matched target should be identity: %g, %g, %v", f, g, err)
	}
	// q = 0 with target 0 is satisfied.
	f, g, err = updateFactors(0, 0, "c")
	if err != nil || f != 1 || g != 1 {
		t.Errorf("zero-zero should be identity: %g, %g, %v", f, g, err)
	}
	// q = 1 with target 1 is satisfied.
	f, g, err = updateFactors(1, 1, "c")
	if err != nil || f != 1 || g != 1 {
		t.Errorf("one-one should be identity: %g, %g, %v", f, g, err)
	}
}

func TestUpdateFactorsErrors(t *testing.T) {
	if _, _, err := updateFactors(0, 0.5, "c"); err == nil {
		t.Error("zero support with positive target accepted")
	}
	if _, _, err := updateFactors(1, 0.5, "c"); err == nil {
		t.Error("full mass with smaller target accepted")
	}
	if _, _, err := updateFactors(0.5, 1, "c"); err == nil {
		t.Error("target 1 from interior accepted")
	}
}

func TestUpdateFactorsZeroTarget(t *testing.T) {
	f, g, err := updateFactors(0.25, 0, "c")
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("f = %g, want 0", f)
	}
	if math.Abs(g-1/0.75) > 1e-12 {
		t.Errorf("g = %g, want 1/0.75", g)
	}
}

func TestUpdateFactorsConservationProperty(t *testing.T) {
	// For any interior q and target, the update conserves total mass and
	// lands the matched partition exactly on the target.
	fn := func(qSeed, tSeed uint16) bool {
		q := (float64(qSeed%998) + 1) / 1000  // (0,1)
		tg := (float64(tSeed%998) + 1) / 1000 // (0,1)
		f, g, err := updateFactors(q, tg, "c")
		if err != nil {
			return false
		}
		newMass := f*q + g*(1-q)
		newMatched := f * q / newMass
		return math.Abs(newMass-1) < 1e-9 && math.Abs(newMatched-tg) < 1e-9
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
