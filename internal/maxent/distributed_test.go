package maxent

import (
	"math"
	"strings"
	"testing"

	"pka/internal/contingency"
)

// compileFactoredTestModel fits the block test model under a lowered dense
// ceiling and returns its factored compiled engine.
func compileFactoredTestModel(t *testing.T) *Compiled {
	t.Helper()
	_, factored, _ := buildBlockTestModels(t)
	forceFactored(t, 16)
	if _, err := factored.Fit(SolveOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	cf, err := factored.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Factored() {
		t.Fatal("test model compiled dense under the lowered ceiling")
	}
	return cf
}

// remoteOf reassembles a factored engine through NewDistributed, with each
// block's own local engine standing in for the remote side — the pure
// plumbing check that the distributed assembly changes nothing.
func remoteOf(t *testing.T, cf *Compiled) *Compiled {
	t.Helper()
	blocks := make([]RemoteBlock, cf.NumBlocks())
	for i := range blocks {
		blocks[i] = RemoteBlock{Vars: cf.BlockVars(i), Sum: cf.BlockSum(i), Eng: cf.Block(i)}
	}
	dist, err := NewDistributed(cf.Names(), cf.Cards(), cf.A0(), blocks)
	if err != nil {
		t.Fatal(err)
	}
	return dist
}

// TestNewDistributedMatchesLocal: a distributed engine assembled from the
// local engine's own blocks answers every evaluation surface bit-identically
// to the original — the invariant the shard coordinator rests on.
func TestNewDistributedMatchesLocal(t *testing.T) {
	cf := compileFactoredTestModel(t)
	dist := remoteOf(t, cf)

	cards := cf.Cards()
	odo := make([]int, len(cards))
	for {
		want, err := cf.CellProb(odo)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dist.CellProb(odo)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("CellProb(%v): distributed %v != local %v", odo, got, want)
		}
		i := len(odo) - 1
		for ; i >= 0; i-- {
			odo[i]++
			if odo[i] < cards[i] {
				break
			}
			odo[i] = 0
		}
		if i < 0 {
			break
		}
	}

	// Marginals and pinned probabilities across and within blocks.
	for _, tc := range []struct {
		vars []int
		vals []int
	}{
		{[]int{0}, []int{2}},
		{[]int{1, 2}, []int{1, 0}}, // spans both blocks
		{[]int{0, 1}, []int{1, 1}},
		{[]int{2, 3}, []int{0, 2}},
		{[]int{0, 3}, []int{2, 1}},
	} {
		vs := contingency.NewVarSet(tc.vars...)
		want, err := cf.Prob(vs, tc.vals)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dist.Prob(vs, tc.vals)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("Prob(%v=%v): distributed %v != local %v", tc.vars, tc.vals, got, want)
		}
		wm, err := cf.Marginal(vs)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := dist.Marginal(vs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wm {
			if math.Float64bits(wm[i]) != math.Float64bits(gm[i]) {
				t.Fatalf("Marginal(%v)[%d]: distributed %v != local %v", tc.vars, i, gm[i], wm[i])
			}
		}
	}

	// Conditional marginal with evidence in the other block.
	fixed := []int{-1, -1, 1, -1}
	wm, err := cf.MarginalGiven(contingency.NewVarSet(0, 1), fixed)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := dist.MarginalGiven(contingency.NewVarSet(0, 1), fixed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wm {
		if math.Float64bits(wm[i]) != math.Float64bits(gm[i]) {
			t.Fatalf("MarginalGiven[%d]: distributed %v != local %v", i, gm[i], wm[i])
		}
	}

	// MPE under several evidence patterns, ties and all.
	for _, fixed := range [][]int{nil, {-1, 1, -1, -1}, {2, -1, -1, 1}, {-1, -1, 0, -1}} {
		wc, wp, err := cf.MaxCell(fixed)
		if err != nil {
			t.Fatal(err)
		}
		gc, gp, err := dist.MaxCell(fixed)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(wp) != math.Float64bits(gp) {
			t.Fatalf("MaxCell(%v) prob: distributed %v != local %v", fixed, gp, wp)
		}
		for i := range wc {
			if wc[i] != gc[i] {
				t.Fatalf("MaxCell(%v): distributed %v != local %v", fixed, gc, wc)
			}
		}
	}

	if math.Float64bits(cf.Sum()) != math.Float64bits(dist.Sum()) {
		t.Fatalf("Sum: distributed %v != local %v", dist.Sum(), cf.Sum())
	}
}

// TestNewDistributedValidation: malformed block sets are refused up front.
func TestNewDistributedValidation(t *testing.T) {
	cf := compileFactoredTestModel(t)
	ok := func() []RemoteBlock {
		blocks := make([]RemoteBlock, cf.NumBlocks())
		for i := range blocks {
			blocks[i] = RemoteBlock{Vars: cf.BlockVars(i), Sum: cf.BlockSum(i), Eng: cf.Block(i)}
		}
		return blocks
	}
	cases := []struct {
		name   string
		mutate func([]RemoteBlock) []RemoteBlock
		want   string
	}{
		{"nil engine", func(b []RemoteBlock) []RemoteBlock { b[0].Eng = nil; return b }, "no engine"},
		{"empty block", func(b []RemoteBlock) []RemoteBlock { b[0].Vars = nil; return b }, "empty"},
		{"descending vars", func(b []RemoteBlock) []RemoteBlock {
			v := b[0].Vars
			v[0], v[1] = v[1], v[0]
			return b
		}, "not ascending"},
		{"attribute out of range", func(b []RemoteBlock) []RemoteBlock {
			b[0].Vars = []int{0, 99}
			return b
		}, "out of range"},
		{"overlapping blocks", func(b []RemoteBlock) []RemoteBlock {
			b[1].Vars = b[0].Vars
			return b
		}, "claimed by"},
		{"missing attribute", func(b []RemoteBlock) []RemoteBlock { return b[:1] }, "not covered"},
		{"no blocks", func(b []RemoteBlock) []RemoteBlock { return nil }, "at least one block"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewDistributed(cf.Names(), cf.Cards(), cf.A0(), tc.mutate(ok()))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}
