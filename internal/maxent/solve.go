package maxent

import (
	"errors"
	"fmt"
	"math"

	"pka/internal/contingency"
)

// Method selects the fitting algorithm.
type Method int

const (
	// GaussSeidel visits constraints sequentially, each update an exact
	// binary-partition IPF step — the memo's Figure 4 procedure.
	GaussSeidel Method = iota
	// Jacobi computes all updates from one snapshot and applies them
	// together with damping. The ablation baseline of experiment X3.
	Jacobi
)

// String names the method.
func (m Method) String() string {
	switch m {
	case GaussSeidel:
		return "gauss-seidel"
	case Jacobi:
		return "jacobi"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// SolveOptions tunes Fit. The zero value asks for defaults (Gauss–Seidel,
// tolerance 1e-9, 10000 sweeps, no trace).
type SolveOptions struct {
	// Method selects the solver; default GaussSeidel.
	Method Method
	// Tol is the convergence threshold on max |predicted - target|.
	// Default 1e-9.
	Tol float64
	// MaxSweeps bounds the number of passes over the constraints.
	// Default 10000.
	MaxSweeps int
	// Damping (Jacobi only) exponentiates each multiplicative update;
	// default 0.5. Must be in (0, 1].
	Damping float64
	// RecordTrace stores per-sweep snapshots of all constraint
	// coefficients in the report — the memo's Table 2.
	RecordTrace bool
	// Incremental enables the streaming-refit fast path: when the model's
	// last Fit converged and a constraint block's targets have not moved
	// since (no AddConstraint or SetTarget touched its families), the
	// factored solver keeps that block's converged coefficients instead of
	// re-sweeping it, and a fully clean model skips the solve outright.
	// Off, every block is re-solved — the historical behaviour.
	Incremental bool
	// Workers fans the factored solver's independent constraint blocks out
	// over a goroutine pool: each block is solved densely over its own
	// sub-space, and blocks share no coefficients, so they are the natural
	// unit of parallel work. <= 0 uses GOMAXPROCS (matching every worker
	// knob in this module), 1 forces the sequential block loop. The fitted
	// coefficients, a0, and report are bit-identical either way — per-block
	// results are collected into indexed slots and reduced in block order —
	// so the knob trades only wall time. Dense (single-block) solves are
	// unaffected.
	Workers int
}

func (o SolveOptions) withDefaults() (SolveOptions, error) {
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.Tol < 0 {
		return o, fmt.Errorf("maxent: negative tolerance %g", o.Tol)
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 10000
	}
	if o.MaxSweeps < 0 {
		return o, fmt.Errorf("maxent: negative sweep limit %d", o.MaxSweeps)
	}
	if o.Damping == 0 {
		o.Damping = 0.5
	}
	if o.Damping < 0 || o.Damping > 1 {
		return o, fmt.Errorf("maxent: damping %g outside (0,1]", o.Damping)
	}
	return o, nil
}

// Report describes a Fit run.
type Report struct {
	Method    Method
	Sweeps    int
	Residual  float64 // final max |predicted - target|
	Converged bool
	// Trace[s] is the coefficient snapshot after sweep s+1 (one value per
	// constraint, insertion order), present when RecordTrace was set.
	// Labels carries the memo-style coefficient names.
	Trace  [][]float64
	Labels []string
	// A0Trace[s] is the implied a0 after sweep s+1.
	A0Trace []float64
	// BlocksFit and BlocksSkipped count, on the factored path, how many
	// constraint blocks were re-solved versus kept as-is by an Incremental
	// refit (unconstrained blocks count as skipped only under Incremental;
	// both stay zero on the dense path).
	BlocksFit     int
	BlocksSkipped int
}

// Fit adjusts the model's coefficients until all constraint targets are met
// (Figure 4). On success the model is normalized: a0 = 1/Σ products.
//
// Inconsistent or unreachable constraints (a positive target on a cell with
// zero model support, or probabilities that cannot coexist) surface as an
// error or as Converged == false with the residual reported.
//
// Joint spaces up to denseModelCells solve densely (the memo's procedure
// verbatim); wider models dispatch to the factored solver, which fits each
// constraint block independently — see blocks.go. When the factored solver
// cannot serve the model (a block too densely coupled, or a RecordTrace
// request) and the full joint still fits under maxDenseCells, the dense
// solver absorbs it; only beyond that ceiling does Fit fail.
func (m *Model) Fit(opts SolveOptions) (*Report, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(m.cons) == 0 {
		return nil, fmt.Errorf("maxent: no constraints to fit")
	}
	if opts.Incremental && m.fitClean && m.dirty != nil && len(m.dirty) == 0 {
		// Nothing moved since the last converged fit: the coefficients are
		// already the solution, bit for bit. Refresh the snapshot and go.
		if _, err := m.Compile(); err != nil {
			return nil, err
		}
		return &Report{Method: opts.Method, Converged: true}, nil
	}
	rep, err := m.fitDispatch(opts)
	// Converged fits reset the dirty bookkeeping: the current coefficients
	// solve the current targets, so future Incremental refits may trust it.
	m.fitClean = err == nil && rep.Converged
	if m.fitClean {
		m.dirty = make(map[contingency.VarSet]bool)
	} else if m.dirty != nil && err == nil {
		// Coefficients moved without converging; the map no longer tells
		// which blocks are at their solution.
		m.dirty = nil
	}
	return rep, err
}

// fitDispatch routes between the dense and factored solvers (Fit's
// historical body, minus the dirty bookkeeping wrapped around it).
func (m *Model) fitDispatch(opts SolveOptions) (*Report, error) {
	cells := m.NumCells()
	if cells <= denseModelCells {
		return m.fitDense(opts)
	}
	if opts.RecordTrace {
		if cells <= maxDenseCells {
			return m.fitDense(opts)
		}
		return nil, fmt.Errorf("maxent: RecordTrace is not supported on the factored (wide-model) solve path")
	}
	rep, err := m.fitFactored(opts)
	if err != nil && errors.Is(err, errBlockTooDense) && cells <= maxDenseCells {
		return m.fitDense(opts)
	}
	return rep, err
}

// fitDense is the dense-joint solve plus the compiled-snapshot refresh the
// public Fit contract promises: opts must already be validated and
// defaulted, and at least one constraint registered.
func (m *Model) fitDense(opts SolveOptions) (*Report, error) {
	rep, err := m.fitDenseCore(opts)
	if err != nil {
		return nil, err
	}
	// Refresh the compiled snapshot so the fitted model serves queries —
	// including the concurrent scan's batch marginals — without a rebuild.
	if _, err := m.Compile(); err != nil {
		return nil, err
	}
	return rep, nil
}

// fitDenseCore runs the dense solve without compiling a snapshot — the
// factored solver fits throwaway per-block sub-models through it and
// compiles the parent once at the end instead.
func (m *Model) fitDenseCore(opts SolveOptions) (*Report, error) {
	m.compiled.Store(nil) // coefficients are about to move; drop the snapshot
	m.blockA0 = nil       // a dense solve moves coefficients outside the block bookkeeping
	s := newSolverState(m)
	rep := &Report{Method: opts.Method}
	if opts.RecordTrace {
		rep.Labels = m.ConstraintLabels()
	}
	for sweep := 1; sweep <= opts.MaxSweeps; sweep++ {
		var resid float64
		var serr error
		switch opts.Method {
		case GaussSeidel:
			resid, serr = s.sweepGaussSeidel()
		case Jacobi:
			resid, serr = s.sweepJacobi(opts.Damping)
		default:
			return nil, fmt.Errorf("maxent: unknown method %v", opts.Method)
		}
		if serr != nil {
			return nil, serr
		}
		rep.Sweeps = sweep
		rep.Residual = resid
		if opts.RecordTrace {
			rep.Trace = append(rep.Trace, s.coefficientSnapshot())
			rep.A0Trace = append(rep.A0Trace, 1/s.sumW)
		}
		if resid < opts.Tol {
			rep.Converged = true
			break
		}
	}
	if s.sumW <= 0 || math.IsNaN(s.sumW) || math.IsInf(s.sumW, 0) {
		return nil, fmt.Errorf("maxent: degenerate weight sum %g after fitting", s.sumW)
	}
	m.a0 = 1 / s.sumW
	return rep, nil
}

// solverState caches the dense unnormalized joint w = Π coefficients so
// constraint updates cost O(matching cells) instead of a full recursion.
// The normalized model probability of a cell is w[cell]/sumW throughout.
type solverState struct {
	m       *Model
	strides []int
	w       []float64
	sumW    float64
	// match[i] lists the flat joint offsets covered by constraint i.
	match [][]int
	// order visits zero-target constraints first, so degenerate values are
	// zeroed before their complement constraints (which then read target 1
	// trivially satisfied) are touched.
	order []int
}

func newSolverState(m *Model) *solverState {
	size := m.NumCells()
	s := &solverState{
		m:       m,
		strides: make([]int, len(m.cards)),
		w:       make([]float64, size),
		match:   make([][]int, len(m.cons)),
	}
	stride := 1
	for i := len(m.cards) - 1; i >= 0; i-- {
		s.strides[i] = stride
		stride *= m.cards[i]
	}
	// Initialize weights from current coefficients (all 1 on a fresh model;
	// refits after discovery start from the previous solution, the memo's
	// "starting with the last previously calculated a values").
	famOrder := sortedFamilies(m.families)
	cell := make([]int, len(m.cards))
	for off := 0; off < size; off++ {
		rem := off
		for i := len(m.cards) - 1; i >= 0; i-- {
			cell[i] = rem % m.cards[i]
			rem /= m.cards[i]
		}
		p := 1.0
		for _, vs := range famOrder {
			ft := m.families[vs]
			fo := 0
			for _, pos := range ft.vars {
				fo = fo*m.cards[pos] + cell[pos]
			}
			p *= ft.coeffs[fo]
		}
		s.w[off] = p
		s.sumW += p
	}
	for i, c := range m.cons {
		s.match[i] = s.matchingOffsets(c)
	}
	s.order = make([]int, 0, len(m.cons))
	for i, c := range m.cons {
		if c.Target == 0 {
			s.order = append(s.order, i)
		}
	}
	for i, c := range m.cons {
		if c.Target != 0 {
			s.order = append(s.order, i)
		}
	}
	return s
}

// matchingOffsets enumerates the flat joint offsets whose coordinates agree
// with the constraint's family cell.
func (s *solverState) matchingOffsets(c Constraint) []int {
	members := c.Family.Members()
	base := 0
	for i, p := range members {
		base += c.Values[i] * s.strides[p]
	}
	var free []int
	for axis := range s.m.cards {
		if !c.Family.Has(axis) {
			free = append(free, axis)
		}
	}
	count := 1
	for _, axis := range free {
		count *= s.m.cards[axis]
	}
	out := make([]int, 0, count)
	idx := make([]int, len(free))
	for {
		off := base
		for i, axis := range free {
			off += idx[i] * s.strides[axis]
		}
		out = append(out, off)
		i := len(free) - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < s.m.cards[free[i]] {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	return out
}

// updateFactors returns the exact binary-partition IPF factors: matched
// cells scale by f = target/q, complement by g = (1-target)/(1-q). In
// product form this is a single odds-ratio update of the constraint's
// coefficient (× f/g) since the complement factor cancels in normalization.
func updateFactors(q, target float64, label string) (f, g float64, err error) {
	switch {
	case q == target:
		return 1, 1, nil
	case q <= 0:
		if target == 0 {
			return 1, 1, nil
		}
		return 0, 0, fmt.Errorf("maxent: constraint %s target %g has zero model support", label, target)
	case q >= 1:
		if target == 1 {
			return 1, 1, nil
		}
		return 0, 0, fmt.Errorf("maxent: constraint %s target %g but model mass is all on the cell", label, target)
	case target == 0:
		return 0, 1 / (1 - q), nil
	case target == 1:
		return 0, 0, fmt.Errorf("maxent: constraint %s target 1 requires emptying its complement; declare the attribute with cardinality 1 instead", label)
	default:
		return target / q, (1 - target) / (1 - q), nil
	}
}

// sweepGaussSeidel performs one pass of sequential exact updates and returns
// the max pre-update residual.
func (s *solverState) sweepGaussSeidel() (float64, error) {
	maxResid := 0.0
	for _, ci := range s.order {
		c := s.m.cons[ci]
		var matchSum float64
		for _, off := range s.match[ci] {
			matchSum += s.w[off]
		}
		q := matchSum / s.sumW
		if d := math.Abs(q - c.Target); d > maxResid {
			maxResid = d
		}
		f, g, err := updateFactors(q, c.Target, c.Label(s.m.names))
		if err != nil {
			return 0, err
		}
		if f == 1 && g == 1 {
			continue
		}
		// Stored weights are coefficient products: matched cells absorb
		// f/g; the uniform complement factor g cancels against a0.
		odds := f / g
		ft := s.m.families[c.Family]
		ft.coeffs[ft.offset(s.m.cards, c.Values)] *= odds
		newMatch := 0.0
		for _, off := range s.match[ci] {
			s.w[off] *= odds
			newMatch += s.w[off]
		}
		s.sumW += newMatch - matchSum
	}
	// Guard against incremental drift across many sweeps.
	s.recomputeSum()
	return maxResid, nil
}

// sweepJacobi computes all factors from the current snapshot, then applies
// them damped. Returns the max pre-update residual.
func (s *solverState) sweepJacobi(damping float64) (float64, error) {
	type upd struct {
		ci   int
		odds float64
	}
	maxResid := 0.0
	updates := make([]upd, 0, len(s.m.cons))
	for _, ci := range s.order {
		c := s.m.cons[ci]
		var matchSum float64
		for _, off := range s.match[ci] {
			matchSum += s.w[off]
		}
		q := matchSum / s.sumW
		if d := math.Abs(q - c.Target); d > maxResid {
			maxResid = d
		}
		f, g, err := updateFactors(q, c.Target, c.Label(s.m.names))
		if err != nil {
			return 0, err
		}
		if f == 1 && g == 1 {
			continue
		}
		if f == 0 {
			updates = append(updates, upd{ci: ci, odds: 0})
			continue
		}
		updates = append(updates, upd{ci: ci, odds: math.Pow(f/g, damping)})
	}
	for _, u := range updates {
		c := s.m.cons[u.ci]
		ft := s.m.families[c.Family]
		ft.coeffs[ft.offset(s.m.cards, c.Values)] *= u.odds
		for _, wOff := range s.match[u.ci] {
			s.w[wOff] *= u.odds
		}
	}
	s.recomputeSum()
	return maxResid, nil
}

func (s *solverState) recomputeSum() {
	total := 0.0
	for _, v := range s.w {
		total += v
	}
	s.sumW = total
}

// coefficientSnapshot returns the current coefficient of every constraint in
// insertion order.
func (s *solverState) coefficientSnapshot() []float64 {
	out := make([]float64, len(s.m.cons))
	for i, c := range s.m.cons {
		ft := s.m.families[c.Family]
		out[i] = ft.coeffs[ft.offset(s.m.cards, c.Values)]
	}
	return out
}
