package maxent

import (
	"fmt"
	"math"

	"pka/internal/contingency"
	"pka/internal/sumprod"
)

// Export/RestoreModel are the binary-snapshot hooks: a fitted model dumps
// everything its compiled engine was built from — coefficients, a0, and in
// factored mode the per-block normalizer state — and RestoreModel rebuilds
// model plus engine from that state without touching the solver. Engine
// compilation from known coefficients is cheap (a deep copy per term); the
// expensive part a snapshot skips is the iterative fit and, in factored
// mode, the per-block sum accumulation, whose float ordering differs from
// eng.Sum() and therefore must travel in the snapshot for the restored
// engine to be bit-identical to the saved one.

// FamilyState is one attribute family's dense coefficient array.
type FamilyState struct {
	Vars   []int // ascending attribute positions
	Coeffs []float64
}

// BlockState is one constraint block's solved normalizer state: the cached
// unnormalized block sum the compiled engine divides by, and (when the
// last fit populated it) the block's a0 contribution, which incremental
// refits reuse bit-for-bit for clean blocks.
type BlockState struct {
	Vars  []int // ascending attribute positions
	Sum   float64
	A0    float64
	HasA0 bool
}

// ModelState is the full serializable state of a fitted model. Blocks is
// populated only when Factored is set; block order matches the model's
// deterministic constraint-graph decomposition (ascending smallest member).
type ModelState struct {
	Names       []string
	Cards       []int
	A0          float64
	Constraints []Constraint // insertion order
	Families    []FamilyState
	Factored    bool
	Blocks      []BlockState
}

// Export captures the model's state for serialization, compiling first so
// the factored block state reflects the current coefficients. Slices in
// the returned state are copies; the caller may hold them across later
// model mutation.
func (m *Model) Export() (*ModelState, error) {
	c, err := m.Compile()
	if err != nil {
		return nil, err
	}
	st := &ModelState{
		Names:    append([]string(nil), m.names...),
		Cards:    append([]int(nil), m.cards...),
		A0:       m.a0,
		Factored: c.Factored(),
	}
	st.Constraints = make([]Constraint, len(m.cons))
	for i, con := range m.cons {
		st.Constraints[i] = Constraint{
			Family: con.Family,
			Values: append([]int(nil), con.Values...),
			Target: con.Target,
		}
	}
	for _, vs := range sortedFamilies(m.families) {
		ft := m.families[vs]
		st.Families = append(st.Families, FamilyState{
			Vars:   append([]int(nil), ft.vars...),
			Coeffs: append([]float64(nil), ft.coeffs...),
		})
	}
	if st.Factored {
		st.Blocks = make([]BlockState, len(c.blocks))
		for i, b := range c.blocks {
			bs := BlockState{Vars: append([]int(nil), b.vars...), Sum: b.sum}
			if a0, ok := m.blockA0[contingency.NewVarSet(b.vars...)]; ok {
				bs.A0, bs.HasA0 = a0, true
			}
			st.Blocks[i] = bs
		}
	}
	return st, nil
}

// RestoreModel rebuilds a fitted model — compiled engine included — from
// exported state, skipping the solve entirely. The restored model is
// marked fit-clean with nothing dirty, so a later incremental refit treats
// every block whose targets did not move as converged, exactly as the
// saved model would have. The state is validated as strictly as the
// AddConstraint path would — dedupe, range checks, exact coefficient
// sizes, family/constraint agreement — but the model is bulk-constructed
// (taking ownership of the state's slices) instead of built one
// AddConstraint at a time: restore is the serving cold-start hot path. In
// factored mode the block structure must match what the constraint graph
// implies.
func RestoreModel(st *ModelState) (*Model, error) {
	nm, err := NewModel(st.Names, st.Cards)
	if err != nil {
		return nil, fmt.Errorf("maxent: restoring model: %w", err)
	}
	totalCells := 0
	for _, fs := range st.Families {
		size := 1
		prev := -1
		for _, p := range fs.Vars {
			if p <= prev || p >= len(nm.cards) {
				return nil, fmt.Errorf("maxent: restoring model: family members %v not ascending in range", fs.Vars)
			}
			prev = p
			size *= nm.cards[p]
		}
		if size == 1 && len(fs.Vars) == 0 {
			return nil, fmt.Errorf("maxent: restoring model: empty coefficient family")
		}
		if len(fs.Coeffs) != size {
			return nil, fmt.Errorf("maxent: restoring model: family %v has %d coefficients, want %d",
				fs.Vars, len(fs.Coeffs), size)
		}
		vs := contingency.NewVarSet(fs.Vars...)
		if _, dup := nm.families[vs]; dup {
			return nil, fmt.Errorf("maxent: restoring model: duplicate coefficient family %v", vs)
		}
		nm.families[vs] = &familyTerm{vars: fs.Vars, coeffs: fs.Coeffs}
		totalCells += size
	}
	nm.cons = make([]Constraint, 0, len(st.Constraints))
	// Dedupe via per-family cell bitmaps instead of the string-keyed conIdx:
	// building the index here costs a key() allocation per constraint on the
	// cold-start path, and a restored model may never mutate. conIdx stays
	// nil; ensureConIdx builds it lazily if a mutation ever needs it. The
	// bitmap doubles as the family-coverage check.
	seen := make(map[contingency.VarSet][]bool, len(nm.families))
	cellsBuf := make([]bool, totalCells)
	for _, c := range st.Constraints {
		if err := c.validate(nm.cards); err != nil {
			return nil, fmt.Errorf("maxent: restoring model: %w", err)
		}
		ft, ok := nm.families[c.Family]
		if !ok {
			return nil, fmt.Errorf("maxent: restoring model: constraint family %v has no coefficients", c.Family)
		}
		cells := seen[c.Family]
		if cells == nil {
			cells = cellsBuf[:len(ft.coeffs):len(ft.coeffs)]
			cellsBuf = cellsBuf[len(ft.coeffs):]
			seen[c.Family] = cells
		}
		off := ft.offset(nm.cards, c.Values)
		if cells[off] {
			return nil, fmt.Errorf("maxent: restoring model: duplicate constraint on %s", c.Label(nm.names))
		}
		cells[off] = true
		nm.cons = append(nm.cons, c)
	}
	nm.conIdx = nil
	if len(seen) != len(nm.families) {
		return nil, fmt.Errorf("maxent: restoring model: %d coefficient families carry no constraints",
			len(nm.families)-len(seen))
	}
	if !(st.A0 > 0) || math.IsInf(st.A0, 0) {
		return nil, fmt.Errorf("maxent: restoring model: degenerate a0 %g", st.A0)
	}
	nm.a0 = st.A0
	// The saved model had converged: start clean so incremental refits skip
	// unmoved blocks, and seed the block-a0 cache they reuse.
	nm.fitClean = true
	nm.dirty = make(map[contingency.VarSet]bool)
	if st.Factored {
		nm.blockA0 = make(map[contingency.VarSet]float64, len(st.Blocks))
		for _, bs := range st.Blocks {
			if bs.HasA0 {
				nm.blockA0[contingency.NewVarSet(bs.Vars...)] = bs.A0
			}
		}
	}
	if err := nm.restoreCompiled(st); err != nil {
		return nil, err
	}
	return nm, nil
}

// restoreCompiled rebuilds the compiled engine from restored coefficients
// plus the stored per-block sums, bypassing the per-block Sum()
// accumulation whose result the snapshot pins bit-for-bit.
func (m *Model) restoreCompiled(st *ModelState) error {
	c := &Compiled{
		names: append([]string(nil), m.names...),
		cards: append([]int(nil), m.cards...),
		a0:    m.a0,
	}
	if !st.Factored {
		if m.NumCells() > maxDenseCells {
			return fmt.Errorf("maxent: restoring model: dense snapshot over %d attributes exceeds the dense ceiling", len(m.cards))
		}
		eng, err := sumprod.Compile(m.cards, m.terms())
		if err != nil {
			return fmt.Errorf("maxent: restoring model: %w", err)
		}
		c.eng = eng
		m.compiled.Store(c)
		return nil
	}
	blocks := m.blocks()
	if len(blocks) != len(st.Blocks) {
		return fmt.Errorf("maxent: restoring model: snapshot has %d blocks, constraint graph has %d",
			len(st.Blocks), len(blocks))
	}
	c.blocks = make([]*compiledBlock, len(blocks))
	fams := m.sortedFamilyTerms()
	var ar blockArena
	maxW := 0
	for i, blk := range blocks {
		bs := st.Blocks[i]
		if len(bs.Vars) != len(blk) {
			return fmt.Errorf("maxent: restoring model: block %d structure mismatch", i)
		}
		for j, p := range blk {
			if bs.Vars[j] != p {
				return fmt.Errorf("maxent: restoring model: block %d structure mismatch", i)
			}
		}
		if !(bs.Sum > 0) || math.IsInf(bs.Sum, 0) {
			return fmt.Errorf("maxent: restoring model: degenerate sum %g for block %v", bs.Sum, blk)
		}
		b, err := m.buildBlock(blk, fams, &ar)
		if err != nil {
			return fmt.Errorf("maxent: restoring model: %w", err)
		}
		b.sum = bs.Sum
		c.blocks[i] = b
		if len(blk) > maxW {
			maxW = len(blk)
		}
	}
	c.blockScratch.New = func() any {
		s := make([]int, maxW)
		return &s
	}
	m.compiled.Store(c)
	return nil
}
