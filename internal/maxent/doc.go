// Package maxent implements the memo's maximum-entropy product model
// (Eq. 12) and the iterative calculation of its a-values (Eqs. 25-31,
// 75-87, Figure 4, Table 2).
//
// A Model is a joint distribution over R categorical attributes in the form
//
//	p(i,j,k,...) = a0 · Π_families a_family(values restricted to family)
//
// where each registered constraint — a target probability for one cell of
// one attribute family — owns one adjustable coefficient. Fitting adjusts
// the coefficients until every constraint's predicted probability matches
// its target, which by the memo's Lagrange-multiplier derivation (Eqs. 8-13)
// is exactly the maximum-entropy distribution subject to those constraints.
//
// Two solvers are provided:
//
//   - Gauss–Seidel iterative scaling (the memo's Figure 4 procedure,
//     generalized): constraints are visited in sequence and each update is
//     an exact binary-partition IPF step — the matched cells are scaled by
//     target/predicted and the complement by (1-target)/(1-predicted), which
//     in product form is a single odds-ratio coefficient update.
//
//   - Jacobi iterative scaling: all updates are computed from the same
//     snapshot and applied together with damping. Kept as the ablation
//     baseline for experiment X3; it needs more sweeps, as the bench shows.
//
// Solvers record per-sweep coefficient trajectories, which is how the repro
// binary regenerates the memo's Table 2.
package maxent
