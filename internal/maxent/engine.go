package maxent

import (
	"fmt"

	"pka/internal/sumprod"
)

// BlockEngine is the evaluation surface of one constraint block of a
// factored snapshot: the five primitives Compiled's combination loops call
// per block, plus the block-local argmax the MPE path needs. The in-process
// implementation wraps a compiled sum-product engine; the serving layer
// implements it over HTTP so one factored model can be sharded across
// processes while every combination loop — and therefore every served
// probability — runs the exact same code and multiplication order as a
// single process.
//
// All positions and cells are block-local (0..len(block vars)). Callers may
// reuse argument slices between calls; implementations must not retain
// them. Implementations that cannot fail (the in-process engine) return nil
// errors; remote implementations surface transport failures.
type BlockEngine interface {
	// Sum returns the unnormalized block total Σ Π coeffs.
	Sum() (float64, error)
	// SumPinned returns the block total with vars (ascending, block-local)
	// clamped to values.
	SumPinned(vars, values []int) (float64, error)
	// SumFixed is SumPinned with dense clamps: fixed[v] >= 0 pins local
	// variable v, -1 (or out-of-length) leaves it summed over; nil pins
	// nothing.
	SumFixed(fixed []int) (float64, error)
	// MarginalFixed returns the dense row-major marginal over vars
	// (ascending, block-local, first slowest) under the fixed clamps.
	MarginalFixed(vars, fixed []int) ([]float64, error)
	// CellValue multiplies the block's coefficients at cell onto init in
	// term order — the accumulator-chaining primitive CellProb threads
	// through blocks, so the product order matches single-process
	// evaluation bit for bit.
	CellValue(init float64, cell []int) (float64, error)
	// ArgmaxFixed returns the block cell maximizing CellValue(1, ·) among
	// cells agreeing with fixed, ties broken toward the lexicographically
	// smallest cell.
	ArgmaxFixed(fixed []int) ([]int, error)
}

// localBlock adapts a compiled sum-product engine to BlockEngine — the
// in-process implementation every single-machine snapshot uses.
type localBlock struct {
	eng *sumprod.Compiled
}

func (l localBlock) Sum() (float64, error) { return l.eng.Sum(), nil }

func (l localBlock) SumPinned(vars, values []int) (float64, error) {
	return l.eng.SumPinned(vars, values), nil
}

func (l localBlock) SumFixed(fixed []int) (float64, error) {
	return l.eng.SumFixed(fixed), nil
}

func (l localBlock) MarginalFixed(vars, fixed []int) ([]float64, error) {
	return l.eng.MarginalFixed(vars, fixed)
}

func (l localBlock) CellValue(init float64, cell []int) (float64, error) {
	return l.eng.CellValue(init, cell), nil
}

func (l localBlock) ArgmaxFixed(fixed []int) ([]int, error) {
	return l.eng.ArgmaxFixed(fixed)
}

// RemoteBlock describes one block of a distributed factored snapshot: its
// global attribute positions (ascending, matching the model's deterministic
// block decomposition), the cached unnormalized block sum, and the engine
// that evaluates it — typically an RPC client owned by the serving layer.
type RemoteBlock struct {
	Vars []int
	Sum  float64
	Eng  BlockEngine
}

// NewDistributed assembles a factored snapshot whose per-block evaluation
// is delegated to the given engines — the seam a shard coordinator uses to
// serve one model from many processes. Blocks must arrive in the model's
// deterministic block order and together cover every attribute exactly
// once; names, cards, and a0 come from the same fitted model the blocks
// were cut from. Every combination loop (Prob, marginals, MPE, cell-product
// chains) is the same code the in-process factored engine runs, so answers
// are bit-identical to single-process serving whenever each engine returns
// the same block quantities.
func NewDistributed(names []string, cards []int, a0 float64, blocks []RemoteBlock) (*Compiled, error) {
	if len(names) != len(cards) {
		return nil, fmt.Errorf("maxent: %d names for %d cardinalities", len(names), len(cards))
	}
	if len(cards) == 0 {
		return nil, fmt.Errorf("maxent: distributed snapshot needs at least one attribute")
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("maxent: distributed snapshot needs at least one block")
	}
	owner := make([]int, len(cards))
	for i := range owner {
		owner[i] = -1
	}
	c := &Compiled{
		names: append([]string(nil), names...),
		cards: append([]int(nil), cards...),
		a0:    a0,
	}
	maxW := 0
	for bi, rb := range blocks {
		if rb.Eng == nil {
			return nil, fmt.Errorf("maxent: distributed block %d has no engine", bi)
		}
		if len(rb.Vars) == 0 {
			return nil, fmt.Errorf("maxent: distributed block %d is empty", bi)
		}
		b := &compiledBlock{
			vars:  append([]int(nil), rb.Vars...),
			cards: make([]int, len(rb.Vars)),
			local: make([]int, len(cards)),
			eng:   rb.Eng,
			sum:   rb.Sum,
		}
		for i := range b.local {
			b.local[i] = -1
		}
		for i, p := range rb.Vars {
			if p < 0 || p >= len(cards) {
				return nil, fmt.Errorf("maxent: distributed block %d: attribute %d out of range [0,%d)", bi, p, len(cards))
			}
			if i > 0 && rb.Vars[i-1] >= p {
				return nil, fmt.Errorf("maxent: distributed block %d: attributes %v not ascending", bi, rb.Vars)
			}
			if owner[p] >= 0 {
				return nil, fmt.Errorf("maxent: attribute %d claimed by distributed blocks %d and %d", p, owner[p], bi)
			}
			owner[p] = bi
			b.cards[i] = cards[p]
			b.local[p] = i
		}
		if len(b.vars) > maxW {
			maxW = len(b.vars)
		}
		c.blocks = append(c.blocks, b)
	}
	for p, bi := range owner {
		if bi < 0 {
			return nil, fmt.Errorf("maxent: attribute %d not covered by any distributed block", p)
		}
	}
	c.blockScratch.New = func() any {
		s := make([]int, maxW)
		return &s
	}
	return c, nil
}

// NumBlocks returns the number of constraint blocks of a factored snapshot
// (0 in dense mode).
func (c *Compiled) NumBlocks() int { return len(c.blocks) }

// BlockVars returns a copy of block i's global attribute positions,
// ascending.
func (c *Compiled) BlockVars(i int) []int {
	return append([]int(nil), c.blocks[i].vars...)
}

// BlockSum returns block i's cached unnormalized sum.
func (c *Compiled) BlockSum(i int) float64 { return c.blocks[i].sum }

// Block returns block i's evaluation engine — the surface a shard process
// exposes over the wire.
func (c *Compiled) Block(i int) BlockEngine { return c.blocks[i].eng }
