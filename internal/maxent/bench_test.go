package maxent

import (
	"fmt"
	"testing"

	"pka/internal/contingency"
)

// benchModel builds a fitted first-order model over r binary attributes.
func benchModel(b *testing.B, r int) (*Model, *contingency.Table) {
	b.Helper()
	cards := make([]int, r)
	for i := range cards {
		cards[i] = 2
	}
	tab, err := contingency.New(nil, cards)
	if err != nil {
		b.Fatal(err)
	}
	cell := make([]int, r)
	for off := 0; off < tab.NumCells(); off++ {
		if err := tab.Unflatten(off, cell); err != nil {
			b.Fatal(err)
		}
		if err := tab.Set(int64(off%13)+5, cell...); err != nil {
			b.Fatal(err)
		}
	}
	m, err := NewModel(nil, cards)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Fit(SolveOptions{}); err != nil {
		b.Fatal(err)
	}
	return m, tab
}

func BenchmarkFitFirstOrder(b *testing.B) {
	for _, r := range []int{3, 6, 9, 12} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, _ := benchModelUnfitted(b, r)
				b.StartTimer()
				if _, err := m.Fit(SolveOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchModelUnfitted(b *testing.B, r int) (*Model, *contingency.Table) {
	b.Helper()
	cards := make([]int, r)
	for i := range cards {
		cards[i] = 2
	}
	tab, err := contingency.New(nil, cards)
	if err != nil {
		b.Fatal(err)
	}
	cell := make([]int, r)
	for off := 0; off < tab.NumCells(); off++ {
		tab.Unflatten(off, cell)
		tab.Set(int64(off%13)+5, cell...)
	}
	m, err := NewModel(nil, cards)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		b.Fatal(err)
	}
	return m, tab
}

func BenchmarkCellProb(b *testing.B) {
	m, _ := benchModel(b, 8)
	cell := make([]int, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cell {
			cell[j] = (i >> uint(j)) & 1
		}
		if _, err := m.CellProb(cell); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbMarginal(b *testing.B) {
	m, _ := benchModel(b, 10)
	vars := contingency.NewVarSet(0, 5, 9)
	values := []int{1, 0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Prob(vars, values); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoint(b *testing.B) {
	m, _ := benchModel(b, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Joint(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	m, _ := benchModel(b, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}

func BenchmarkRefitWithExtraConstraint(b *testing.B) {
	m, tab := benchModel(b, 8)
	n := float64(tab.Total())
	obs, err := tab.MarginalCount(contingency.NewVarSet(0, 1), []int{1, 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cp := m.Clone()
		cp.AddConstraint(Constraint{
			Family: contingency.NewVarSet(0, 1),
			Values: []int{1, 1},
			Target: float64(obs) / n,
		})
		b.StartTimer()
		if _, err := cp.Fit(SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitFactoredParallel solves a multi-block factored model with
// the serial block loop and with the block solves fanned out over the
// worker pool — the tentpole scaling measurement of the parallel solver.
// 6 independent blocks of 5 ternary attributes (243 dense cells, 15
// first-order + 4 order-2 constraints each) give every worker real
// iterative work; results are bit-identical across worker counts, so the
// sub-benchmarks differ only in wall time.
func BenchmarkFitFactoredParallel(b *testing.B) {
	cons, cards := wideBlockConstraints(b, 6, 5, 99)
	master := modelFromConstraints(b, cards, cons)
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := master.Clone()
				rep, err := m.Fit(SolveOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Converged || rep.BlocksFit != 6 {
					b.Fatalf("fit report %+v", rep)
				}
			}
		})
	}
}
