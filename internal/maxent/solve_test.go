package maxent

import (
	"math"
	"strings"
	"testing"

	"pka/internal/contingency"
)

func TestSolveOptionsDefaults(t *testing.T) {
	o, err := SolveOptions{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Tol != 1e-9 || o.MaxSweeps != 10000 || o.Damping != 0.5 {
		t.Errorf("defaults = %+v", o)
	}
	if _, err := (SolveOptions{Tol: -1}).withDefaults(); err == nil {
		t.Error("negative tol accepted")
	}
	if _, err := (SolveOptions{MaxSweeps: -1}).withDefaults(); err == nil {
		t.Error("negative sweeps accepted")
	}
	if _, err := (SolveOptions{Damping: 2}).withDefaults(); err == nil {
		t.Error("damping > 1 accepted")
	}
}

func TestMethodString(t *testing.T) {
	if GaussSeidel.String() != "gauss-seidel" || Jacobi.String() != "jacobi" {
		t.Error("method names wrong")
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Error("unknown method should include its number")
	}
}

func TestFitRequiresConstraints(t *testing.T) {
	m, _ := NewModel(nil, []int{2, 2})
	if _, err := m.Fit(SolveOptions{}); err == nil {
		t.Error("fit with no constraints accepted")
	}
}

// TestTable2Reproduction replays the memo's Table 2: starting from the
// first-order solution, add the N^AC_12 constraint (target .219) and solve
// iteratively. The memo converges in 7 iterations at ~2-decimal precision;
// we verify the same convergence scale and that all constraints are met.
func TestTable2Reproduction(t *testing.T) {
	m := firstOrderModel(t)
	target := 750.0 / 3428 // the memo's (P^AC_12)data = .219
	if err := m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 2),
		Values: []int{0, 1},
		Target: target,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(SolveOptions{Tol: 1e-3, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("did not converge: residual %g after %d sweeps", rep.Residual, rep.Sweeps)
	}
	// The memo's hand iteration took 7 passes at this precision; our
	// sequential scaling should land in the same order of magnitude.
	if rep.Sweeps > 10 {
		t.Errorf("took %d sweeps at tol 1e-3; memo's Table 2 took 7", rep.Sweeps)
	}
	if len(rep.Trace) != rep.Sweeps || len(rep.A0Trace) != rep.Sweeps {
		t.Errorf("trace has %d/%d rows for %d sweeps",
			len(rep.Trace), len(rep.A0Trace), rep.Sweeps)
	}
	if len(rep.Labels) != m.NumConstraints() {
		t.Errorf("labels = %d, constraints = %d", len(rep.Labels), m.NumConstraints())
	}
	// Constraint satisfaction at library precision.
	if _, err := m.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	p, err := m.Prob(contingency.NewVarSet(0, 2), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-target) > 1e-8 {
		t.Errorf("p^AC_12 = %.9f, target %.9f", p, target)
	}
	// First-order marginals still hold (the memo's Eqs. 64-71).
	for i, want := range []float64{1290.0 / 3428, 1133.0 / 3428, 1005.0 / 3428} {
		got, err := m.Prob(contingency.NewVarSet(0), []int{i})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("p^A_%d = %.9f, want %.9f", i+1, got, want)
		}
	}
	// B is untouched by the AC constraint: predicted B marginals unchanged
	// (the memo notes Eqs. 68-69 "do not contribute").
	for j, want := range []float64{433.0 / 3428, 2995.0 / 3428} {
		got, err := m.Prob(contingency.NewVarSet(1), []int{j})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("p^B_%d = %.9f, want %.9f", j+1, got, want)
		}
	}
}

// TestTable2ConditionalIndependencePreserved: with only the AC constraint
// added, B must stay independent of (A, C) in the fitted model:
// p(ijk) = p^AC(ik) · p^B(j).
func TestTable2ConditionalIndependencePreserved(t *testing.T) {
	m := firstOrderModel(t)
	if err := m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 2),
		Values: []int{0, 1},
		Target: 750.0 / 3428,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				pijk, _ := m.CellProb([]int{i, j, k})
				pik, _ := m.Prob(contingency.NewVarSet(0, 2), []int{i, k})
				pj, _ := m.Prob(contingency.NewVarSet(1), []int{j})
				if math.Abs(pijk-pik*pj) > 1e-9 {
					t.Errorf("p(%d%d%d)=%.9f != p^AC·p^B = %.9f",
						i+1, j+1, k+1, pijk, pik*pj)
				}
			}
		}
	}
}

func TestJacobiReachesSameSolution(t *testing.T) {
	build := func() *Model {
		m := firstOrderModel(t)
		if err := m.AddConstraint(Constraint{
			Family: contingency.NewVarSet(0, 2),
			Values: []int{0, 1},
			Target: 750.0 / 3428,
		}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	gs := build()
	if _, err := gs.Fit(SolveOptions{Method: GaussSeidel}); err != nil {
		t.Fatal(err)
	}
	jc := build()
	repJ, err := jc.Fit(SolveOptions{Method: Jacobi, MaxSweeps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !repJ.Converged {
		t.Fatalf("jacobi did not converge: residual %g", repJ.Residual)
	}
	jg, _ := gs.Joint()
	jj, err := jc.Joint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jg {
		if math.Abs(jg[i]-jj[i]) > 1e-6 {
			t.Fatalf("cell %d: GS %.9f vs Jacobi %.9f", i, jg[i], jj[i])
		}
	}
	// The maximum-entropy solution is unique, so both must agree.
}

func TestJacobiSlowerThanGaussSeidel(t *testing.T) {
	// The documented ablation claim: Jacobi needs more sweeps.
	build := func() *Model {
		m := firstOrderModel(t)
		m.AddConstraint(Constraint{
			Family: contingency.NewVarSet(0, 2),
			Values: []int{0, 1},
			Target: 750.0 / 3428,
		})
		return m
	}
	gs := build()
	repG, err := gs.Fit(SolveOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	jc := build()
	repJ, err := jc.Fit(SolveOptions{Method: Jacobi, Tol: 1e-9, MaxSweeps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if repJ.Sweeps <= repG.Sweeps {
		t.Errorf("expected Jacobi (%d sweeps) to need more sweeps than Gauss-Seidel (%d)",
			repJ.Sweeps, repG.Sweeps)
	}
}

func TestFitZeroTargets(t *testing.T) {
	// A table with an empty cell: the zero first-order target must zero the
	// coefficient and the rest must renormalize.
	tab := contingency.MustNew([]string{"X", "Y"}, []int{3, 2})
	tab.Set(10, 0, 0)
	tab.Set(10, 0, 1)
	tab.Set(20, 1, 0)
	tab.Set(20, 1, 1)
	// X=2 never occurs.
	m, err := NewModel(tab.Names(), tab.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("no convergence: %+v", rep)
	}
	p, err := m.Prob(contingency.NewVarSet(0), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("P(X=3) = %g, want exactly 0", p)
	}
	p, _ = m.Prob(contingency.NewVarSet(0), []int{0})
	if math.Abs(p-1.0/3) > 1e-9 {
		t.Errorf("P(X=1) = %g, want 1/3", p)
	}
}

func TestFitDegenerateAttribute(t *testing.T) {
	// An attribute whose entire mass sits on one value: target 1 plus
	// target 0 constraints. Zero-first ordering must make this solvable.
	tab := contingency.MustNew([]string{"X", "Y"}, []int{2, 2})
	tab.Set(7, 0, 0)
	tab.Set(3, 0, 1)
	m, err := NewModel(tab.Names(), tab.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("degenerate attribute did not converge: %+v", rep)
	}
	p, _ := m.Prob(contingency.NewVarSet(0), []int{0})
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("P(X=1) = %g, want 1", p)
	}
	p, _ = m.CellProb([]int{0, 0})
	if math.Abs(p-0.7) > 1e-9 {
		t.Errorf("p(1,1) = %g, want 0.7", p)
	}
}

func TestFitInconsistentConstraint(t *testing.T) {
	// A second-order target that exceeds its first-order marginal cannot be
	// satisfied; Fit must not report convergence (or must error).
	m := firstOrderModel(t)
	if err := m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 2),
		Values: []int{0, 1},
		Target: 0.9, // p^A_1 is only .376
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Fit(SolveOptions{MaxSweeps: 200})
	if err == nil && rep.Converged {
		t.Error("inconsistent constraints reported converged")
	}
}

func TestFitMatchesEmpiricalWhenFullySpecified(t *testing.T) {
	// Constraining every cell of a 2×2 at order 2 forces the empirical
	// distribution exactly.
	tab := contingency.MustNew(nil, []int{2, 2})
	tab.Set(10, 0, 0)
	tab.Set(20, 0, 1)
	tab.Set(30, 1, 0)
	tab.Set(40, 1, 1)
	m, err := NewModel(nil, tab.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	n := float64(tab.Total())
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if i == 1 && j == 1 {
				continue // implied by the others
			}
			if err := m.AddConstraint(Constraint{
				Family: contingency.NewVarSet(0, 1),
				Values: []int{i, j},
				Target: float64(tab.MustAt(i, j)) / n,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	joint, _ := m.Joint()
	want := []float64{0.1, 0.2, 0.3, 0.4}
	for i := range want {
		if math.Abs(joint[i]-want[i]) > 1e-8 {
			t.Errorf("cell %d = %.9f, want %.9f", i, joint[i], want[i])
		}
	}
}

func TestRefitAfterAddingConstraintStartsWarm(t *testing.T) {
	// The memo re-solves "starting with the last previously calculated a
	// values". A warm refit of an already-satisfied model must converge in
	// one sweep.
	m := firstOrderModel(t)
	rep, err := m.Fit(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sweeps != 1 {
		t.Errorf("warm refit took %d sweeps, want 1", rep.Sweeps)
	}
}

func TestFitUnknownMethod(t *testing.T) {
	m := firstOrderModel(t)
	if _, err := m.Fit(SolveOptions{Method: Method(42)}); err == nil {
		t.Error("unknown method accepted")
	}
}
