package maxent

import (
	"encoding/json"
	"fmt"
	"sort"

	"pka/internal/contingency"
)

// constraintJSON is the wire form of a Constraint.
type constraintJSON struct {
	Family []int   `json:"family"`
	Values []int   `json:"values"`
	Target float64 `json:"target"`
}

// familyJSON carries one family's dense coefficient array.
type familyJSON struct {
	Vars   []int     `json:"vars"`
	Coeffs []float64 `json:"coeffs"`
}

// modelJSON is the persisted form of a fitted model: everything needed to
// answer queries without refitting.
type modelJSON struct {
	Names       []string         `json:"names"`
	Cards       []int            `json:"cards"`
	A0          float64          `json:"a0"`
	Constraints []constraintJSON `json:"constraints"`
	Families    []familyJSON     `json:"families"`
}

// MarshalJSON encodes the model, coefficients included.
func (m *Model) MarshalJSON() ([]byte, error) {
	w := modelJSON{
		Names: m.names,
		Cards: m.cards,
		A0:    m.a0,
	}
	for _, c := range m.cons {
		w.Constraints = append(w.Constraints, constraintJSON{
			Family: c.Family.Members(),
			Values: c.Values,
			Target: c.Target,
		})
	}
	for _, vs := range sortedFamilies(m.families) {
		ft := m.families[vs]
		w.Families = append(w.Families, familyJSON{Vars: ft.vars, Coeffs: ft.coeffs})
	}
	return json.Marshal(w)
}

// sortedFamilies returns family keys in deterministic (mask) order.
func sortedFamilies(fams map[contingency.VarSet]*familyTerm) []contingency.VarSet {
	keys := make([]contingency.VarSet, 0, len(fams))
	for k := range fams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// UnmarshalJSON decodes and validates a model. The receiver is overwritten.
func (m *Model) UnmarshalJSON(data []byte) error {
	var w modelJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("maxent: decoding model: %w", err)
	}
	nm, err := NewModel(w.Names, w.Cards)
	if err != nil {
		return fmt.Errorf("maxent: decoding model: %w", err)
	}
	for _, cj := range w.Constraints {
		c := Constraint{
			Family: contingency.NewVarSet(cj.Family...),
			Values: cj.Values,
			Target: cj.Target,
		}
		if err := nm.AddConstraint(c); err != nil {
			return fmt.Errorf("maxent: decoding model: %w", err)
		}
	}
	// Overlay the persisted coefficient arrays onto the allocated families.
	for _, fj := range w.Families {
		vs := contingency.NewVarSet(fj.Vars...)
		ft, ok := nm.families[vs]
		if !ok {
			// A family can exist without constraints only through
			// corruption; reject.
			return fmt.Errorf("maxent: decoding model: coefficient family %v has no constraints", vs)
		}
		if len(fj.Coeffs) != len(ft.coeffs) {
			return fmt.Errorf("maxent: decoding model: family %v has %d coefficients, want %d",
				vs, len(fj.Coeffs), len(ft.coeffs))
		}
		copy(ft.coeffs, fj.Coeffs)
	}
	if w.A0 <= 0 {
		return fmt.Errorf("maxent: decoding model: non-positive a0 %g", w.A0)
	}
	nm.a0 = w.A0
	*m = *nm
	return nil
}
