package maxent

import (
	"errors"
	"fmt"
	"math/bits"

	"pka/internal/contingency"
	"pka/internal/par"
)

// Wide attribute spaces cannot be fit or queried through dense joint
// materialization: the memo's machinery is exponential in R. But the
// product-form model factorizes exactly over the connected components of
// its constraint graph — attributes joined through shared multi-attribute
// families. Constraints are block-local, the maximum-entropy objective
// separates over blocks, and every joint/marginal probability is a product
// of per-block quantities. The factored solver and engine exploit this:
// each block is solved and queried densely over its own (small) sub-space,
// and blocks are combined by multiplication. On discovery workloads blocks
// stay small — screening plus the level-wise scan admit few couplings — so
// the wide path costs the sum of small dense problems, never the joint.

// denseModelCells is the largest joint space fit and compiled densely by
// default; above it the factored path takes over. It is a variable so
// equivalence tests can force the factored path onto small models.
var denseModelCells = 1 << 20

// maxDenseCells is the absolute dense-joint ceiling (the former NewModel
// cap): when the factored path cannot serve a model — one constraint block
// too densely coupled, a solver-trace request, or a Joint()/Entropy()
// materialization — the dense path absorbs the work as long as the full
// joint still fits under this ceiling, preserving the pre-factored
// capability range. Only models beyond it hard-fail those operations. A
// variable so tests can exercise the refusal on small models.
var maxDenseCells = 1 << 28

// errBlockTooDense marks a factored-path failure the dense fallback in
// Fit and Compile may absorb.
var errBlockTooDense = errors.New("maxent: constraint block too densely coupled for the factored engine")

// blockDenseSize returns the dense cell count of one constraint block, or
// errBlockTooDense (wrapped with the block and cap) when it exceeds
// denseModelCells — the single bound both the factored solver and the
// factored compiler enforce.
func (m *Model) blockDenseSize(blk []int) (int, error) {
	size := 1
	for _, p := range blk {
		if size > denseModelCells/m.cards[p] {
			return 0, fmt.Errorf("maxent: block %v exceeds %d dense cells: %w",
				blk, denseModelCells, errBlockTooDense)
		}
		size *= m.cards[p]
	}
	return size, nil
}

// blocks partitions the attribute positions into the connected components
// of the constraint graph (union-find over every order >= 2 family). Each
// block lists its members ascending; blocks are ordered by smallest member,
// so the decomposition is deterministic.
func (m *Model) blocks() [][]int {
	parent := make([]int, len(m.cards))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for vs := range m.families {
		first := -1
		for wi, nw := 0, vs.NumWords(); wi < nw; wi++ {
			base := wi * 64
			for w := vs.Word(wi); w != 0; w &= w - 1 {
				p := base + bits.TrailingZeros64(w)
				if first < 0 {
					first = p
				} else {
					union(first, p)
				}
			}
		}
	}
	// Gather components without a map: count members per root, carve each
	// block out of one shared backing array, then fill in position order
	// (which keeps members ascending). blocks() runs on every compile,
	// including the snapshot-restore cold-start path.
	cnt := make([]int, len(m.cards))
	nb := 0
	for p := range m.cards {
		r := find(p)
		if cnt[r] == 0 {
			nb++
		}
		cnt[r]++
	}
	out := make([][]int, 0, nb)
	buf := make([]int, len(m.cards))
	cursor := make([]int, len(m.cards))
	pos := 0
	for p := range m.cards {
		if parent[p] == p {
			out = append(out, buf[pos:pos+cnt[p]:pos+cnt[p]]) // roots ascend: block order is by smallest member
			cursor[p] = pos
			pos += cnt[p]
		}
	}
	for p := range m.cards {
		r := find(p)
		buf[cursor[r]] = p
		cursor[r]++
	}
	return out
}

// subModel builds a dense model over one block whose coefficient arrays
// ALIAS the parent's: fitting the sub-model writes the parent's
// coefficients in place. The family cell layout is preserved because family
// coefficients are row-major over members ascending, and the block keeps
// relative attribute order.
func (m *Model) subModel(blk []int) (*Model, error) {
	local := make(map[int]int, len(blk))
	names := make([]string, len(blk))
	cards := make([]int, len(blk))
	for i, p := range blk {
		local[p] = i
		names[i] = m.names[p]
		cards[i] = m.cards[p]
	}
	sub, err := NewModel(names, cards)
	if err != nil {
		return nil, err
	}
	for vs, ft := range m.families {
		members := vs.Members()
		if _, in := local[members[0]]; !in {
			continue
		}
		lv := make([]int, len(members))
		for i, p := range members {
			li, ok := local[p]
			if !ok {
				return nil, fmt.Errorf("maxent: family %v straddles blocks", vs)
			}
			lv[i] = li
		}
		sub.families[contingency.NewVarSet(lv...)] = &familyTerm{vars: lv, coeffs: ft.coeffs}
	}
	for _, c := range m.cons {
		members := c.Family.Members()
		if _, in := local[members[0]]; !in {
			continue
		}
		lv := make([]int, len(members))
		for i, p := range members {
			lv[i] = local[p]
		}
		lc := Constraint{
			Family: contingency.NewVarSet(lv...),
			Values: append([]int(nil), c.Values...),
			Target: c.Target,
		}
		sub.conIdx[lc.key()] = len(sub.cons)
		sub.cons = append(sub.cons, lc)
	}
	return sub, nil
}

// fitFactored fits each constraint block independently with the dense
// solver over its own sub-space and combines the normalizers: the
// separable maximum-entropy solution. Coefficients are written through the
// aliased sub-models; a0 becomes the product of the block a0s. The report
// aggregates worst-case sweeps and residual across blocks. Block sizes are
// validated up front, so an errBlockTooDense return leaves the model's
// coefficients untouched and the caller free to fall back.
//
// Under SolveOptions.Incremental, blocks none of whose families were
// touched since the last converged fit (the model's dirty bookkeeping)
// keep their converged coefficients: only the block's unnormalized sum is
// recomputed — one pass over its cells — for the a0 product, instead of a
// full iterative re-solve. This is the warm per-block refit of the
// streaming-ingest pipeline: a delta batch that moves one block's targets
// re-solves that block alone. An incremental refit that solved no block
// and landed on a bitwise-unchanged a0 keeps the existing compiled
// snapshot instead of recompiling every block's engine from scratch.
//
// Constraint blocks are independent by construction — no two blocks share
// an attribute, a family, or a coefficient array — so SolveOptions.Workers
// fans the per-block work (solves and skipped-block normalizer sums alike)
// out over the shared pool. Each block writes only its own aliased
// coefficient arrays and its own result slot, and the a0 product, the
// worst-case sweep/residual aggregation, and the block counters are all
// reduced in block order afterwards, so the fitted model and the report
// are bit-identical to the sequential block loop regardless of how the
// scheduler interleaves the workers.
func (m *Model) fitFactored(opts SolveOptions) (*Report, error) {
	blocks := m.blocks()
	sizes := make([]int, len(blocks))
	for i, blk := range blocks {
		size, err := m.blockDenseSize(blk)
		if err != nil {
			return nil, err
		}
		sizes[i] = size
	}
	skipClean := opts.Incremental && m.fitClean && m.dirty != nil
	dirtyPos := make(map[int]bool)
	if skipClean {
		for vs := range m.dirty {
			for _, p := range vs.Members() {
				dirtyPos[p] = true
			}
		}
	}
	// Build every sub-model up front: subModel reads the parent's shared
	// maps, so construction stays on this goroutine, and only the disjoint
	// per-block work runs on the pool.
	subs := make([]*Model, len(blocks))
	for bi, blk := range blocks {
		sub, err := m.subModel(blk)
		if err != nil {
			return nil, err
		}
		subs[bi] = sub
	}
	// blockOut is one block's contribution, collected per index slot and
	// reduced in block order below.
	type blockOut struct {
		a0      float64
		rep     *Report // nil when the block was skipped
		skipped bool    // counted under Incremental only (historical contract)
	}
	outs := make([]blockOut, len(blocks))
	err := par.Do(len(blocks), opts.Workers, func(bi int) error {
		blk, sub := blocks[bi], subs[bi]
		vs := contingency.NewVarSet(blk...)
		switch {
		case len(sub.cons) == 0:
			// Unconstrained block: all coefficients are 1, the block sum
			// is its cell count, and nothing needs solving.
			outs[bi] = blockOut{a0: 1 / float64(sizes[bi]), skipped: opts.Incremental}
		case skipClean && !blockDirty(blk, dirtyPos):
			// Converged coefficients for unmoved targets: keep them. The
			// block's a0 contribution from the last factored fit is reused
			// bit-for-bit when cached; only a cache miss (e.g. a loaded
			// model) pays the one-pass block sum for the normalizer.
			if cached, ok := m.blockA0[vs]; ok {
				outs[bi] = blockOut{a0: cached, skipped: true}
			} else {
				outs[bi] = blockOut{a0: 1 / sub.coefficientSum(), skipped: true}
			}
		default:
			rep, err := sub.fitDenseCore(opts)
			if err != nil {
				return err
			}
			outs[bi] = blockOut{a0: sub.a0, rep: rep}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	agg := &Report{Method: opts.Method, Converged: true}
	a0 := 1.0
	blockA0 := make(map[contingency.VarSet]float64, len(blocks))
	for bi := range blocks {
		o := outs[bi]
		a0 *= o.a0 // float product is order-sensitive: always block order
		blockA0[contingency.NewVarSet(blocks[bi]...)] = o.a0
		if o.rep == nil {
			if o.skipped {
				agg.BlocksSkipped++
			}
			continue
		}
		agg.BlocksFit++
		if o.rep.Sweeps > agg.Sweeps {
			agg.Sweeps = o.rep.Sweeps
		}
		if o.rep.Residual > agg.Residual {
			agg.Residual = o.rep.Residual
		}
		agg.Converged = agg.Converged && o.rep.Converged
	}
	m.blockA0 = blockA0
	if agg.BlocksFit == 0 && a0 == m.a0 && m.compiled.Load() != nil {
		// No block moved a coefficient and the normalizer reproduced
		// bitwise: the compiled snapshot still serves this exact model, so
		// keep it instead of recompiling every block's engine.
		return agg, nil
	}
	m.a0 = a0
	m.compiled.Store(nil)
	if _, err := m.Compile(); err != nil {
		return nil, err
	}
	return agg, nil
}

// blockDirty reports whether any attribute of the block belongs to a dirty
// family. Families never straddle blocks, so member-level containment is
// exact.
func blockDirty(blk []int, dirtyPos map[int]bool) bool {
	for _, p := range blk {
		if dirtyPos[p] {
			return true
		}
	}
	return false
}

// coefficientSum computes the model's unnormalized sum Σ_cells Π coeffs in
// one pass — the a0 input for a block whose solve was skipped. Cell order
// matches newSolverState's initialization, so the accumulation is
// deterministic.
func (m *Model) coefficientSum() float64 {
	size := m.NumCells()
	famOrder := sortedFamilies(m.families)
	cell := make([]int, len(m.cards))
	sum := 0.0
	for off := 0; off < size; off++ {
		rem := off
		for i := len(m.cards) - 1; i >= 0; i-- {
			cell[i] = rem % m.cards[i]
			rem /= m.cards[i]
		}
		p := 1.0
		for _, vs := range famOrder {
			ft := m.families[vs]
			fo := 0
			for _, pos := range ft.vars {
				fo = fo*m.cards[pos] + cell[pos]
			}
			p *= ft.coeffs[fo]
		}
		sum += p
	}
	return sum
}
