package maxent

import (
	"encoding/json"
	"math"
	"testing"

	"pka/internal/contingency"
)

// memoTable reconstructs the memo's Figure 1 data.
func memoTable(t testing.TB) *contingency.Table {
	t.Helper()
	tab := contingency.MustNew([]string{"A", "B", "C"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := tab.Set(data[i][j][k], i, j, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tab
}

// firstOrderModel builds and fits the memo's starting model (Eq. 48-60).
func firstOrderModel(t testing.TB) *Model {
	t.Helper()
	tab := memoTable(t)
	m, err := NewModel(tab.Names(), tab.Cards())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddFirstOrderConstraints(tab); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, nil); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := NewModel(nil, []int{0}); err == nil {
		t.Error("zero cardinality accepted")
	}
	if _, err := NewModel([]string{"A"}, []int{2, 2}); err == nil {
		t.Error("name mismatch accepted")
	}
	// Wide joint spaces are accepted: they are served by the factored
	// engine and never materialized.
	if _, err := NewModel(nil, []int{1 << 15, 1 << 15}); err != nil {
		t.Errorf("wide joint rejected: %v", err)
	}
	m, err := NewModel(nil, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.R() != 2 || m.NumCells() != 6 || m.A0() != 1 {
		t.Errorf("fresh model: R=%d cells=%d a0=%g", m.R(), m.NumCells(), m.A0())
	}
}

func TestAddConstraintValidation(t *testing.T) {
	m, _ := NewModel(nil, []int{3, 2})
	bad := []Constraint{
		{Family: contingency.VarSet{}, Values: nil, Target: 0.5},
		{Family: contingency.NewVarSet(5), Values: []int{0}, Target: 0.5},
		{Family: contingency.NewVarSet(0), Values: []int{0, 1}, Target: 0.5},
		{Family: contingency.NewVarSet(0), Values: []int{9}, Target: 0.5},
		{Family: contingency.NewVarSet(0), Values: []int{0}, Target: -0.1},
		{Family: contingency.NewVarSet(0), Values: []int{0}, Target: 1.1},
	}
	for i, c := range bad {
		if err := m.AddConstraint(c); err == nil {
			t.Errorf("bad constraint %d accepted", i)
		}
	}
	good := Constraint{Family: contingency.NewVarSet(0), Values: []int{0}, Target: 0.4}
	if err := m.AddConstraint(good); err != nil {
		t.Fatalf("good constraint rejected: %v", err)
	}
	if err := m.AddConstraint(good); err == nil {
		t.Error("duplicate constraint accepted")
	}
	if !m.HasConstraint(good.Family, good.Values) {
		t.Error("HasConstraint missed a registered constraint")
	}
	if m.HasConstraint(good.Family, []int{1}) {
		t.Error("HasConstraint reported an absent constraint")
	}
}

func TestConstraintLabel(t *testing.T) {
	c := Constraint{
		Family: contingency.NewVarSet(0, 2),
		Values: []int{0, 1},
		Target: 0.219,
	}
	got := c.Label([]string{"A", "B", "C"})
	if got != "a^{A,C}_{1,2}" {
		t.Errorf("Label = %q", got)
	}
	// Missing names fall back to positions.
	got = c.Label(nil)
	if got != "a^{v0,v2}_{1,2}" {
		t.Errorf("Label without names = %q", got)
	}
}

func TestFirstOrderFitMatchesMemoEq60(t *testing.T) {
	// With only first-order constraints, the fitted model factorizes and
	// predicted cell probabilities are products of marginals (Eqs. 61-62).
	m := firstOrderModel(t)
	pA := []float64{1290.0 / 3428, 1133.0 / 3428, 1005.0 / 3428}
	pB := []float64{433.0 / 3428, 2995.0 / 3428}
	pC := []float64{1780.0 / 3428, 1648.0 / 3428}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				want := pA[i] * pB[j] * pC[k]
				got, err := m.CellProb([]int{i, j, k})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("p(%d%d%d) = %.9f, independence says %.9f", i+1, j+1, k+1, got, want)
				}
			}
		}
	}
}

func TestFirstOrderMarginalsSatisfied(t *testing.T) {
	m := firstOrderModel(t)
	resid, err := m.Residual()
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-9 {
		t.Errorf("residual after fit = %g", resid)
	}
}

func TestJointSumsToOne(t *testing.T) {
	m := firstOrderModel(t)
	joint, err := m.Joint()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range joint {
		if p < 0 {
			t.Fatalf("negative probability %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("joint sums to %.15f", sum)
	}
}

func TestProbMatchesJointAggregation(t *testing.T) {
	m := firstOrderModel(t)
	// Add the memo's second-order constraint and refit so the model is not
	// a pure product — a stronger check for Prob.
	if err := m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 2),
		Values: []int{0, 1},
		Target: 750.0 / 3428,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	joint, err := m.Joint()
	if err != nil {
		t.Fatal(err)
	}
	// P(A=1) via Prob vs via joint.
	got, err := m.Prob(contingency.NewVarSet(0), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for j := 0; j < 2; j++ {
		for k := 0; k < 2; k++ {
			want += joint[0*4+j*2+k]
		}
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob(A=1) = %.12f, joint sum = %.12f", got, want)
	}
	// P(A=1, C=2).
	got, err = m.Prob(contingency.NewVarSet(0, 2), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want = joint[0*4+0*2+1] + joint[0*4+1*2+1]
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob(A=1,C=2) = %.12f, joint sum = %.12f", got, want)
	}
	// The constrained cell hits its target.
	if math.Abs(got-750.0/3428) > 1e-9 {
		t.Errorf("p^AC_12 = %.9f, target %.9f", got, 750.0/3428)
	}
}

func TestProbValidation(t *testing.T) {
	m := firstOrderModel(t)
	if _, err := m.Prob(contingency.NewVarSet(0), []int{0, 1}); err == nil {
		t.Error("value-count mismatch accepted")
	}
	if _, err := m.Prob(contingency.NewVarSet(7), []int{0}); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := m.Prob(contingency.NewVarSet(0), []int{5}); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := m.CellProb([]int{0}); err == nil {
		t.Error("short cell accepted")
	}
	if _, err := m.CellProb([]int{0, 0, 9}); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestCoefficientAccess(t *testing.T) {
	m := firstOrderModel(t)
	// First-order coefficients should be the marginal probabilities up to
	// the normalization split (their products match independence). Check
	// the accessor works and unconstrained family errors.
	v, err := m.Coefficient(contingency.NewVarSet(0), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("coefficient = %g", v)
	}
	if _, err := m.Coefficient(contingency.NewVarSet(0, 1), []int{0, 0}); err == nil {
		t.Error("missing family accepted")
	}
	if _, err := m.Coefficient(contingency.NewVarSet(0), []int{0, 1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := m.Coefficient(contingency.NewVarSet(0), []int{-1}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestEntropyOfIndependentFit(t *testing.T) {
	// H of a product distribution is the sum of marginal entropies.
	m := firstOrderModel(t)
	h, err := m.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	hm := func(ps []float64) float64 {
		s := 0.0
		for _, p := range ps {
			if p > 0 {
				s -= p * math.Log(p)
			}
		}
		return s
	}
	want := hm([]float64{1290.0 / 3428, 1133.0 / 3428, 1005.0 / 3428}) +
		hm([]float64{433.0 / 3428, 2995.0 / 3428}) +
		hm([]float64{1780.0 / 3428, 1648.0 / 3428})
	if math.Abs(h-want) > 1e-9 {
		t.Errorf("H = %.9f, sum of marginal entropies = %.9f", h, want)
	}
}

func TestCloneIsolation(t *testing.T) {
	m := firstOrderModel(t)
	cp := m.Clone()
	if err := cp.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 1),
		Values: []int{0, 0},
		Target: 240.0 / 3428,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if m.NumConstraints() == cp.NumConstraints() {
		t.Error("clone shares constraint list")
	}
	// Original stays a pure product.
	p, _ := m.CellProb([]int{0, 0, 0})
	want := (1290.0 / 3428) * (433.0 / 3428) * (1780.0 / 3428)
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("original perturbed by clone fit: %g vs %g", p, want)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := firstOrderModel(t)
	if err := m.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 2),
		Values: []int{0, 1},
		Target: 750.0 / 3428,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Same probabilities cell by cell.
	jm, _ := m.Joint()
	jb, err := back.Joint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jm {
		if math.Abs(jm[i]-jb[i]) > 1e-12 {
			t.Fatalf("cell %d: %.12f vs %.12f after round trip", i, jm[i], jb[i])
		}
	}
	if back.NumConstraints() != m.NumConstraints() {
		t.Error("constraint count changed in round trip")
	}
}

func TestModelJSONRejectsCorrupt(t *testing.T) {
	var m Model
	cases := []string{
		`{"names":["A"],"cards":[2],"a0":0,"constraints":[],"families":[]}`,
		`{"names":["A"],"cards":[2],"a0":1,"constraints":[],"families":[{"vars":[0],"coeffs":[1,1]}]}`,
		`{"names":["A"],"cards":[2],"a0":1,"constraints":[{"family":[0],"values":[0],"target":2}],"families":[]}`,
		`{"names":[],"cards":[],"a0":1}`,
		`garbage`,
	}
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("corrupt model accepted: %s", c)
		}
	}
}
