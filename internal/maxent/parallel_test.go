package maxent

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pka/internal/contingency"
)

// wideBlockConstraints synthesizes a consistent constraint set over
// nBlocks independent blocks of blockAttrs ternary attributes each:
// first-order marginals for every value plus order-2 constraints chaining
// each block's attributes to its first, all with empirical targets from
// one seeded sample — so the set is always satisfiable. Returned in
// deterministic insertion order (first-order by attribute, then order-2
// by block).
func wideBlockConstraints(tb testing.TB, nBlocks, blockAttrs int, seed int64) ([]Constraint, []int) {
	tb.Helper()
	r := nBlocks * blockAttrs
	cards := make([]int, r)
	for i := range cards {
		cards[i] = 3
	}
	tab, err := contingency.NewSparse(nil, cards)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	cell := make([]int, r)
	for n := 0; n < 4000; n++ {
		for b := 0; b < nBlocks; b++ {
			base := b * blockAttrs
			cell[base] = rng.Intn(3)
			for j := 1; j < blockAttrs; j++ {
				// Correlated within the block, independent across blocks.
				if rng.Float64() < 0.7 {
					cell[base+j] = cell[base]
				} else {
					cell[base+j] = rng.Intn(3)
				}
			}
		}
		if err := tab.Observe(cell...); err != nil {
			tb.Fatal(err)
		}
	}
	total := float64(tab.Total())
	var cons []Constraint
	for axis := 0; axis < r; axis++ {
		fam := contingency.NewVarSet(axis)
		for v := 0; v < 3; v++ {
			n, err := tab.MarginalCount(fam, []int{v})
			if err != nil {
				tb.Fatal(err)
			}
			cons = append(cons, Constraint{Family: fam, Values: []int{v}, Target: float64(n) / total})
		}
	}
	for b := 0; b < nBlocks; b++ {
		base := b * blockAttrs
		for j := 1; j < blockAttrs; j++ {
			fam := contingency.NewVarSet(base, base+j)
			n, err := tab.MarginalCount(fam, []int{1, 1})
			if err != nil {
				tb.Fatal(err)
			}
			cons = append(cons, Constraint{Family: fam, Values: []int{1, 1}, Target: float64(n) / total})
		}
	}
	return cons, cards
}

// modelFromConstraints builds an unfitted model with the constraints added
// in the given order.
func modelFromConstraints(tb testing.TB, cards []int, cons []Constraint) *Model {
	tb.Helper()
	m, err := NewModel(nil, cards)
	if err != nil {
		tb.Fatal(err)
	}
	for _, c := range cons {
		if err := m.AddConstraint(c); err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

// requireSameReport fails unless the scalar report fields match bitwise.
func requireSameReport(t *testing.T, want, got *Report, label string) {
	t.Helper()
	if got.Method != want.Method || got.Sweeps != want.Sweeps ||
		math.Float64bits(got.Residual) != math.Float64bits(want.Residual) ||
		got.Converged != want.Converged ||
		got.BlocksFit != want.BlocksFit || got.BlocksSkipped != want.BlocksSkipped {
		t.Fatalf("%s: report %+v != serial %+v", label, got, want)
	}
}

// requireBitIdentical fails unless two models carry bitwise-equal a0 and
// family coefficient arrays.
func requireBitIdentical(t *testing.T, want, got *Model, label string) {
	t.Helper()
	if math.Float64bits(want.a0) != math.Float64bits(got.a0) {
		t.Fatalf("%s: a0 %v (bits %x) != serial %v (bits %x)",
			label, got.a0, math.Float64bits(got.a0), want.a0, math.Float64bits(want.a0))
	}
	if len(want.families) != len(got.families) {
		t.Fatalf("%s: %d families vs %d", label, len(got.families), len(want.families))
	}
	for vs, wf := range want.families {
		gf, ok := got.families[vs]
		if !ok {
			t.Fatalf("%s: family %v missing", label, vs)
		}
		for i := range wf.coeffs {
			if math.Float64bits(wf.coeffs[i]) != math.Float64bits(gf.coeffs[i]) {
				t.Fatalf("%s: family %v coeff %d: %v != serial %v",
					label, vs, i, gf.coeffs[i], wf.coeffs[i])
			}
		}
	}
}

// TestFitFactoredParallelBitIdentical fits the same multi-block model with
// the serial block loop and with several worker counts — including over a
// seeded shuffle of the constraint insertion order — and demands
// bit-identical coefficients, a0, and report.
func TestFitFactoredParallelBitIdentical(t *testing.T) {
	// 8 blocks of 2 ternary attributes: joint 3^16 cells, so the factored
	// path engages without overrides; every block is 9 dense cells.
	cons, cards := wideBlockConstraints(t, 8, 2, 42)
	for _, shuffleSeed := range []int64{0, 3, 11} {
		order := cons
		if shuffleSeed != 0 {
			order = append([]Constraint(nil), cons...)
			rand.New(rand.NewSource(shuffleSeed)).Shuffle(len(order), func(i, j int) {
				order[i], order[j] = order[j], order[i]
			})
		}
		serial := modelFromConstraints(t, cards, order)
		serialRep, err := serial.Fit(SolveOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !serialRep.Converged {
			t.Fatalf("shuffle %d: serial fit did not converge (residual %g)", shuffleSeed, serialRep.Residual)
		}
		if serialRep.BlocksFit != 8 {
			t.Fatalf("shuffle %d: serial fit solved %d blocks, want 8", shuffleSeed, serialRep.BlocksFit)
		}
		for _, workers := range []int{0, 2, 3, 8, 32} {
			label := fmt.Sprintf("shuffle=%d workers=%d", shuffleSeed, workers)
			par := modelFromConstraints(t, cards, order)
			parRep, err := par.Fit(SolveOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			requireSameReport(t, serialRep, parRep, label)
			requireBitIdentical(t, serial, par, label)
		}
	}
}

// TestFitFactoredParallelIncrementalBitIdentical retargets one block and
// incrementally refits with serial and parallel block loops: identical
// coefficients, a0, and skip bookkeeping, with only the dirty block
// re-solved.
func TestFitFactoredParallelIncrementalBitIdentical(t *testing.T) {
	// 8 blocks of 2 ternary attributes: 3^16 joint cells keeps the factored
	// path engaged without overrides.
	cons, cards := wideBlockConstraints(t, 8, 2, 7)
	build := func() *Model {
		m := modelFromConstraints(t, cards, cons)
		if rep, err := m.Fit(SolveOptions{Workers: 1}); err != nil || !rep.Converged {
			t.Fatalf("initial fit: %v (%+v)", err, rep)
		}
		// Retarget block 2's order-2 constraint.
		fam := contingency.NewVarSet(4, 5)
		if err := m.SetTarget(fam, []int{1, 1}, 0.21); err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial := build()
	serialRep, err := serial.Fit(SolveOptions{Incremental: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serialRep.BlocksFit != 1 || serialRep.BlocksSkipped != 7 {
		t.Fatalf("serial incremental refit: fit %d skipped %d, want 1/7",
			serialRep.BlocksFit, serialRep.BlocksSkipped)
	}
	for _, workers := range []int{0, 2, 4} {
		par := build()
		parRep, err := par.Fit(SolveOptions{Incremental: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		requireSameReport(t, serialRep, parRep, fmt.Sprintf("incremental workers=%d", workers))
		requireBitIdentical(t, serial, par, fmt.Sprintf("incremental workers=%d", workers))
	}
}

// TestFitFactoredAllSkippedKeepsSnapshot: an incremental factored refit
// that re-solves no block and reproduces a0 bitwise must keep the existing
// compiled snapshot instead of recompiling every block engine.
func TestFitFactoredAllSkippedKeepsSnapshot(t *testing.T) {
	cons, cards := wideBlockConstraints(t, 8, 2, 13)
	m := modelFromConstraints(t, cards, cons)
	if rep, err := m.Fit(SolveOptions{}); err != nil || !rep.Converged {
		t.Fatalf("initial fit: %v (%+v)", err, rep)
	}
	before := m.compiled.Load()
	if before == nil {
		t.Fatal("fit left no compiled snapshot")
	}
	// Drive fitFactored directly with a clean dirty map: the Fit entry
	// point short-circuits this case, but fitFactored must still hold the
	// keep-the-snapshot contract for it.
	opts, err := SolveOptions{Incremental: true}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.fitFactored(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksFit != 0 {
		t.Fatalf("all-clean refit re-solved %d blocks", rep.BlocksFit)
	}
	if got := m.compiled.Load(); got != before {
		t.Fatal("all-skipped incremental refit recompiled the snapshot")
	}
}

// TestFitFactoredParallelError: a block whose constraints cannot be
// satisfied must surface the same deterministic error serially and in
// parallel, with no panic from concurrent solves.
func TestFitFactoredParallelError(t *testing.T) {
	cons, cards := wideBlockConstraints(t, 4, 2, 3)
	build := func() *Model {
		m := modelFromConstraints(t, cards, cons)
		// An impossible target: probability 1 on one cell of block 1 while
		// its complement keeps positive first-order targets.
		if err := m.SetTarget(contingency.NewVarSet(2, 3), []int{1, 1}, 1); err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial := build()
	_, serialErr := serial.Fit(SolveOptions{Workers: 1})
	if serialErr == nil {
		t.Fatal("serial fit accepted an impossible constraint")
	}
	for _, workers := range []int{0, 2, 4} {
		par := build()
		_, parErr := par.Fit(SolveOptions{Workers: workers})
		if parErr == nil {
			t.Fatalf("workers=%d: parallel fit accepted an impossible constraint", workers)
		}
		if parErr.Error() != serialErr.Error() {
			t.Fatalf("workers=%d: error %q != serial %q", workers, parErr, serialErr)
		}
	}
}

// TestFitNegativeWorkersMeansGOMAXPROCS: every worker knob in the module
// reads <= 0 as "use the machine" — a negative count must fit normally
// (and bit-identically), not error. Guards the pka.Options.Workers
// passthrough, where -1 historically meant GOMAXPROCS end to end.
func TestFitNegativeWorkersMeansGOMAXPROCS(t *testing.T) {
	cons, cards := wideBlockConstraints(t, 4, 2, 51)
	serial := modelFromConstraints(t, cards, cons)
	forceFactored(t, 1<<10)
	if rep, err := serial.Fit(SolveOptions{Workers: 1}); err != nil || !rep.Converged {
		t.Fatalf("serial fit: %v (%+v)", err, rep)
	}
	neg := modelFromConstraints(t, cards, cons)
	rep, err := neg.Fit(SolveOptions{Workers: -1})
	if err != nil {
		t.Fatalf("Workers=-1 rejected: %v", err)
	}
	if !rep.Converged {
		t.Fatalf("Workers=-1 fit did not converge (%+v)", rep)
	}
	requireBitIdentical(t, serial, neg, "workers=-1")
}
