package maxent

import (
	"math"
	"math/rand"
	"testing"

	"pka/internal/contingency"
)

// forceFactored lowers the dense-model threshold so a small test model
// takes the factored path, restoring it afterwards. Tests using it must
// not run in parallel.
func forceFactored(t *testing.T, cells int) {
	t.Helper()
	prev := denseModelCells
	denseModelCells = cells
	t.Cleanup(func() { denseModelCells = prev })
}

// buildBlockTestModels returns two identical unfitted models over a
// [3,2,2,3] space with first-order constraints from a random table plus
// one order-2 constraint inside each of the blocks {0,1} and {2,3}.
func buildBlockTestModels(t *testing.T) (*Model, *Model, *contingency.Table) {
	t.Helper()
	tab := contingency.MustNew(nil, []int{3, 2, 2, 3})
	rng := rand.New(rand.NewSource(42))
	cell := make([]int, 4)
	for n := 0; n < 5000; n++ {
		cell[0] = rng.Intn(3)
		cell[1] = cell[0] % 2
		if rng.Float64() < 0.3 {
			cell[1] = rng.Intn(2)
		}
		cell[2] = rng.Intn(2)
		cell[3] = cell[2]
		if rng.Float64() < 0.25 {
			cell[3] = rng.Intn(3)
		}
		if err := tab.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	mk := func() *Model {
		m, err := NewModel(nil, tab.Cards())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddFirstOrderConstraints(tab); err != nil {
			t.Fatal(err)
		}
		for _, con := range []struct {
			fam  contingency.VarSet
			vals []int
		}{
			{contingency.NewVarSet(0, 1), []int{1, 1}},
			{contingency.NewVarSet(2, 3), []int{0, 0}},
		} {
			n, err := tab.MarginalCount(con.fam, con.vals)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.AddConstraint(Constraint{
				Family: con.fam,
				Values: con.vals,
				Target: float64(n) / float64(tab.Total()),
			}); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	return mk(), mk(), tab
}

// TestFactoredFitMatchesDense fits the same constrained model through the
// dense solver and the factored (block-decomposed) solver and demands the
// same distribution: every cell probability, marginal, and conditional
// slice agrees to solver precision.
func TestFactoredFitMatchesDense(t *testing.T) {
	dense, factored, _ := buildBlockTestModels(t)
	opts := SolveOptions{Tol: 1e-12}
	if _, err := dense.Fit(opts); err != nil {
		t.Fatal(err)
	}

	forceFactored(t, 16) // total space 36 > 16; blocks of 6 cells still fit
	rep, err := factored.Fit(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("factored fit did not converge (residual %g)", rep.Residual)
	}
	cd, err := dense.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := factored.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cf.eng != nil || len(cf.blocks) == 0 {
		t.Fatal("model did not compile in factored mode")
	}
	if cd.eng == nil {
		t.Fatal("reference model not in dense mode")
	}

	const tol = 1e-9
	cell := make([]int, 4)
	for a := 0; a < 3; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				for d := 0; d < 3; d++ {
					cell[0], cell[1], cell[2], cell[3] = a, b, c, d
					pd, err := cd.CellProb(cell)
					if err != nil {
						t.Fatal(err)
					}
					pf, err := cf.CellProb(cell)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(pd-pf) > tol {
						t.Fatalf("CellProb%v: dense %.15f, factored %.15f", cell, pd, pf)
					}
				}
			}
		}
	}

	// Marginals over families straddling both blocks.
	for _, fam := range []contingency.VarSet{
		contingency.NewVarSet(0),
		contingency.NewVarSet(1, 2),
		contingency.NewVarSet(0, 3),
		contingency.NewVarSet(0, 1, 2, 3),
	} {
		md, err := cd.Marginal(fam)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := cf.Marginal(fam)
		if err != nil {
			t.Fatal(err)
		}
		if len(md) != len(mf) {
			t.Fatalf("Marginal(%v): %d vs %d cells", fam, len(md), len(mf))
		}
		for i := range md {
			if math.Abs(md[i]-mf[i]) > tol {
				t.Fatalf("Marginal(%v)[%d]: dense %.15f, factored %.15f", fam, i, md[i], mf[i])
			}
		}
	}

	// Pinned probabilities and conditional slices.
	vs := contingency.NewVarSet(1, 3)
	pd, err := cd.Prob(vs, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := cf.Prob(vs, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pd-pf) > tol {
		t.Fatalf("Prob: dense %.15f, factored %.15f", pd, pf)
	}
	fixed := []int{-1, 0, -1, 1}
	gd, err := cd.MarginalGiven(contingency.NewVarSet(0), fixed)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := cf.MarginalGiven(contingency.NewVarSet(0), fixed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gd {
		if math.Abs(gd[i]-gf[i]) > tol {
			t.Fatalf("MarginalGiven[%d]: dense %.15f, factored %.15f", i, gd[i], gf[i])
		}
	}

	// The residual of the factored model against its targets is solver-tight.
	resid, err := factored.Residual()
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-9 {
		t.Errorf("factored residual %g", resid)
	}
}

// TestFactoredJointRefuses verifies factored snapshots refuse to
// materialize the joint instead of allocating it.
// forceNoDenseFallback lowers the absolute dense ceiling so the hard
// refusal paths (Joint, over-dense blocks, RecordTrace on truly wide
// models) can be exercised on small test models.
func forceNoDenseFallback(t *testing.T, cells int) {
	t.Helper()
	prev := maxDenseCells
	maxDenseCells = cells
	t.Cleanup(func() { maxDenseCells = prev })
}

// TestFactoredJointMaterializes: under the absolute dense ceiling a
// factored snapshot can still materialize its joint (cell-product walk),
// matching the dense engine; beyond the ceiling it refuses.
func TestFactoredJointMaterializes(t *testing.T) {
	dense, factored, _ := buildBlockTestModels(t)
	opts := SolveOptions{Tol: 1e-12}
	if _, err := dense.Fit(opts); err != nil {
		t.Fatal(err)
	}
	forceFactored(t, 16)
	if _, err := factored.Fit(opts); err != nil {
		t.Fatal(err)
	}
	cf, err := factored.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Factored() {
		t.Fatal("wide model compiled dense")
	}
	jf, err := factored.Joint()
	if err != nil {
		t.Fatalf("factored Joint under the dense ceiling refused: %v", err)
	}
	jd, err := dense.Joint()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jd {
		if math.Abs(jf[i]-jd[i]) > 1e-9 {
			t.Fatalf("joint cell %d: factored %v, dense %v", i, jf[i], jd[i])
		}
	}
	if _, err := factored.Entropy(); err != nil {
		t.Errorf("factored Entropy under the dense ceiling refused: %v", err)
	}
	// Beyond the absolute ceiling both refuse.
	forceNoDenseFallback(t, 16)
	if _, err := factored.Joint(); err == nil {
		t.Error("factored Joint materialized beyond the dense ceiling")
	}
	if _, err := factored.Entropy(); err == nil {
		t.Error("factored Entropy materialized beyond the dense ceiling")
	}
}

// TestFactoredBlockTooDense verifies the factored solver reports (instead
// of attempting) a constraint block wider than the dense sub-solve limit.
func TestFactoredBlockTooDense(t *testing.T) {
	dense, _, tab := buildBlockTestModels(t)
	// Couple everything into one block.
	n, err := tab.MarginalCount(contingency.NewVarSet(0, 1, 2, 3), []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.AddConstraint(Constraint{
		Family: contingency.NewVarSet(0, 1, 2, 3),
		Values: []int{0, 0, 0, 0},
		Target: float64(n) / float64(tab.Total()),
	}); err != nil {
		t.Fatal(err)
	}
	forceFactored(t, 16) // the single 36-cell block now exceeds the limit

	// Under the absolute ceiling the dense solver absorbs the over-dense
	// block, so the fit still succeeds.
	rep, err := dense.Fit(SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("over-dense block under the ceiling not absorbed: %v", err)
	}
	if !rep.Converged {
		t.Errorf("fallback dense fit did not converge: %+v", rep)
	}
	c, err := dense.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Factored() {
		t.Error("over-dense block compiled factored")
	}

	// Beyond the ceiling the factored solver reports instead of attempting.
	forceNoDenseFallback(t, 16)
	if _, err := dense.Fit(SolveOptions{}); err == nil {
		t.Error("over-dense block accepted beyond the dense ceiling")
	}
}

// TestFactoredRecordTrace: a trace request routes through the dense solver
// while the joint fits under the absolute ceiling, and errors beyond it.
func TestFactoredRecordTrace(t *testing.T) {
	_, factored, _ := buildBlockTestModels(t)
	forceFactored(t, 16)
	rep, err := factored.Fit(SolveOptions{RecordTrace: true})
	if err != nil {
		t.Fatalf("RecordTrace under the dense ceiling rejected: %v", err)
	}
	if len(rep.Trace) == 0 {
		t.Error("no trace recorded by the dense fallback")
	}
	forceNoDenseFallback(t, 16)
	if _, err := factored.Fit(SolveOptions{RecordTrace: true}); err == nil {
		t.Error("RecordTrace accepted on the factored path beyond the ceiling")
	}
}

// TestMaxCellMatchesBruteForce checks MaxCell against exhaustive argmax
// enumeration, in both engine modes and under various pin patterns. The
// factored answer must match the brute-force cell exactly (including the
// toward-smaller-cells tie-break) and its probability bit for bit.
func TestMaxCellMatchesBruteForce(t *testing.T) {
	cards := []int{3, 2, 2, 3}
	brute := func(c *Compiled, fixed []int) ([]int, float64) {
		best := make([]int, len(cards))
		bestP := -1.0
		cell := make([]int, len(cards))
		for {
			ok := true
			if fixed != nil {
				for i, v := range fixed {
					if v >= 0 && cell[i] != v {
						ok = false
						break
					}
				}
			}
			if ok {
				p, err := c.CellProb(cell)
				if err != nil {
					t.Fatal(err)
				}
				if p > bestP {
					bestP = p
					copy(best, cell)
				}
			}
			i := len(cell) - 1
			for i >= 0 {
				cell[i]++
				if cell[i] < cards[i] {
					break
				}
				cell[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
		return best, bestP
	}
	pins := [][]int{
		nil,
		{-1, -1, -1, -1},
		{1, -1, -1, -1},
		{-1, -1, 0, -1},
		{2, 0, -1, 1},
		{0, 1, 1, 2}, // fully pinned
	}
	check := func(t *testing.T, c *Compiled) {
		t.Helper()
		for _, fixed := range pins {
			wantCell, wantP := brute(c, fixed)
			gotCell, gotP, err := c.MaxCell(fixed)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantCell {
				if gotCell[i] != wantCell[i] {
					t.Fatalf("MaxCell(%v) = %v, brute force %v", fixed, gotCell, wantCell)
				}
			}
			if gotP != wantP {
				t.Errorf("MaxCell(%v) p = %v, brute force %v", fixed, gotP, wantP)
			}
		}
		if _, _, err := c.MaxCell([]int{0, 0}); err == nil {
			t.Error("short fixed slice accepted")
		}
		if _, _, err := c.MaxCell([]int{0, 0, 0, 99}); err == nil {
			t.Error("out-of-range pin accepted")
		}
	}

	dense, factored, _ := buildBlockTestModels(t)
	if _, err := dense.Fit(SolveOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	cd, err := dense.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cd.Factored() {
		t.Fatal("dense model compiled factored")
	}
	t.Run("dense", func(t *testing.T) { check(t, cd) })

	forceFactored(t, 16)
	if _, err := factored.Fit(SolveOptions{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	cf, err := factored.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Factored() {
		t.Fatal("wide model compiled dense")
	}
	t.Run("factored", func(t *testing.T) { check(t, cf) })
}
