package cluster

// RetargetForTest points a replica's tail at a different primary URL — the
// fault-injection hook for poisoned-log tests.
func RetargetForTest(r *Replica, url string) { r.primary = url }
