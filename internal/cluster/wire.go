// Package cluster is the distributed data bank: the roles and wire types
// that spread one probabilistic knowledge base across processes.
//
// Two axes of scale, composable with the existing single-process server:
//
//   - Replication (read scale): a Primary owns the model and an append-only
//     observe log (internal/replog); Replicas boot from a PKAS snapshot +
//     log catch-up and follow the tail, applying each batch through the
//     same incremental-update path the primary ran — so every replica's
//     engine, and therefore every answer it serves, is bit-identical to
//     the primary's at the same log offset.
//
//   - Sharding (model scale): a factored model's constraint blocks are
//     partitioned across Shard processes; a Coordinator answers queries by
//     delegating per-block evaluation over HTTP through the same
//     maxent.BlockEngine seam the in-process factored engine uses, so the
//     combination arithmetic — multiplication order included — is the
//     single-process code and answers are bit-identical.
//
// Consistency model: convergent counts (observe batches are atomic and
// order-insensitive for net counts; the log fixes one order and every
// replica applies it), eventually-consistent reads (a replica serves its
// last applied offset), and version-gated read-your-writes (the observe
// response carries the new model version; clients poll a replica's readyz
// or schema endpoint until it catches up).
//
// Every float64 that crosses the wire travels as its IEEE-754 bit pattern
// (F64), never as a decimal rendering — bit-identity survives the network.
package cluster

import (
	"encoding/json"
	"math"
)

// F64 carries one float64 as its raw IEEE-754 bits. It marshals as a JSON
// number holding the uint64 bit pattern: Go encodes and decodes uint64
// digits exactly, so the value round-trips bit for bit where a decimal
// float rendering could perturb the last ulp.
type F64 uint64

// FromFloat packs a float64 into its wire form.
func FromFloat(f float64) F64 { return F64(math.Float64bits(f)) }

// Float unpacks the wire form back into the identical float64.
func (b F64) Float() float64 { return math.Float64frombits(uint64(b)) }

// FromFloats packs a slice.
func FromFloats(fs []float64) []F64 {
	out := make([]F64, len(fs))
	for i, f := range fs {
		out[i] = FromFloat(f)
	}
	return out
}

// Floats unpacks a slice.
func Floats(bs []F64) []float64 {
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = b.Float()
	}
	return out
}

// logRecord is the payload of one replog record: the observe batch exactly
// as the client submitted it (value labels in schema order). Replaying it
// through ObserveLabeled reproduces the primary's update bit for bit.
type logRecord struct {
	Rows [][]string `json:"rows"`
}

// logResponse frames GET /v1/log: the records from the requested offset
// (bounded by the page size) and End, the log's current next offset, so a
// tail reader knows how far behind it still is.
type logResponse struct {
	From    uint64            `json:"from"`
	Next    uint64            `json:"next"`
	End     uint64            `json:"end"`
	Records []json.RawMessage `json:"records"`
}

// Eval op names — one per maxent.BlockEngine primitive (Sum travels in the
// shard meta instead; it never changes while serving).
const (
	opSumPinned     = "sum_pinned"
	opSumFixed      = "sum_fixed"
	opMarginalFixed = "marginal_fixed"
	opCellValue     = "cell_value"
	opArgmaxFixed   = "argmax_fixed"
)

// EvalOp is one block-engine call addressed to a shard. All positions and
// cells are block-local, exactly as the BlockEngine interface takes them.
type EvalOp struct {
	Op    string `json:"op"`
	Block int    `json:"block"`
	// Vars/Values carry sum_pinned's sparse pins and marginal_fixed's kept
	// variables.
	Vars   []int `json:"vars,omitempty"`
	Values []int `json:"values,omitempty"`
	// Fixed is the dense clamp vector of sum_fixed / marginal_fixed /
	// argmax_fixed; empty means nothing pinned.
	Fixed []int `json:"fixed,omitempty"`
	// Acc is cell_value's accumulator seed: the coordinator threads the
	// running product through shards in block order, preserving the exact
	// multiplication order of single-process CellProb.
	Acc  F64   `json:"acc,omitempty"`
	Cell []int `json:"cell,omitempty"`
}

// EvalResult answers one EvalOp: a scalar (sums, cell_value), an array
// (marginal_fixed), or a cell (argmax_fixed).
type EvalResult struct {
	Scalar F64   `json:"scalar,omitempty"`
	Array  []F64 `json:"array,omitempty"`
	Cell   []int `json:"cell,omitempty"`
}

// EvalRequest and EvalResponse frame POST /v1/shard/eval. Ops evaluate
// independently; results arrive in op order.
type EvalRequest struct {
	Ops []EvalOp `json:"ops"`
}

type EvalResponse struct {
	Results []EvalResult `json:"results"`
}

// BlockMeta describes one constraint block a shard owns: its index in the
// model's deterministic block order, its global attribute positions, and
// its cached unnormalized sum (bits, so the coordinator's combination
// arithmetic starts from the identical float).
type BlockMeta struct {
	Index int   `json:"index"`
	Vars  []int `json:"vars"`
	Sum   F64   `json:"sum"`
}

// ShardMeta frames GET /v1/shard/meta: which slice of the model this shard
// serves. The coordinator validates every field against its own copy of
// the snapshot before routing a single query.
type ShardMeta struct {
	// Shard and Shards are the process's position in the -shard i/n spec.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Attributes and Blocks describe the full model so mismatched
	// snapshots are caught even when the owned set happens to align.
	Attributes int         `json:"attributes"`
	Blocks     int         `json:"blocks"`
	A0         F64         `json:"a0"`
	Owned      []BlockMeta `json:"owned"`
}

// errorBody is the error frame shard endpoints return, matching the query
// server's {"error": ...} shape.
type errorBody struct {
	Error string `json:"error"`
}
