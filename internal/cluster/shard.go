package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"pka/internal/kb"
	"pka/internal/maxent"
	"pka/internal/query"
)

// maxEvalOps bounds one eval request.
const maxEvalOps = 4096

// Shard serves a slice of a factored model's constraint blocks: block i
// belongs to shard i mod n under the `-shard i/n` spec, a deterministic
// partition every process computes identically from the model's block
// order. Each shard loads the full snapshot (blocks are small — the model
// already factors because the joint is too wide, so per-block state is a
// fraction of it) but evaluates only its owned blocks, keeping its working
// set and query load to 1/n of the fleet's.
type Shard struct {
	eng   *maxent.Compiled
	index int
	total int
	owned map[int]bool
	// cards[b] is owned block b's local cardinalities, for validating op
	// arguments before they reach the engine (whose fast paths index
	// without bounds checks a network peer should be able to trip).
	cards map[int][]int
	meta  ShardMeta
}

// NewShard slices a compiled knowledge base for shard index of total. The
// engine must be factored — a dense model has exactly one "block" (the
// joint) and nothing to shard.
func NewShard(kbase *kb.KnowledgeBase, index, total int) (*Shard, error) {
	if kbase == nil {
		return nil, fmt.Errorf("cluster: nil knowledge base")
	}
	if total < 1 || index < 0 || index >= total {
		return nil, fmt.Errorf("cluster: shard %d/%d out of range", index, total)
	}
	eng, err := kbase.Model().Compile()
	if err != nil {
		return nil, err
	}
	if !eng.Factored() {
		return nil, fmt.Errorf("cluster: model is dense (single block) — sharding needs a factored model; serve it whole instead")
	}
	s := &Shard{
		eng:   eng,
		index: index,
		total: total,
		owned: make(map[int]bool),
		cards: make(map[int][]int),
		meta: ShardMeta{
			Shard:      index,
			Shards:     total,
			Attributes: eng.R(),
			Blocks:     eng.NumBlocks(),
			A0:         FromFloat(eng.A0()),
		},
	}
	for b := 0; b < eng.NumBlocks(); b++ {
		if b%total != index {
			continue
		}
		s.owned[b] = true
		vars := eng.BlockVars(b)
		cards := eng.Cards()
		local := make([]int, len(vars))
		for i, p := range vars {
			local[i] = cards[p]
		}
		s.cards[b] = local
		s.meta.Owned = append(s.meta.Owned, BlockMeta{
			Index: b,
			Vars:  vars,
			Sum:   FromFloat(eng.BlockSum(b)),
		})
	}
	return s, nil
}

// Meta returns the shard's advertised slice of the model.
func (s *Shard) Meta() ShardMeta { return s.meta }

// Readiness: a shard is ready once constructed (the snapshot loaded and
// compiled before the listener bound).
func (s *Shard) Readiness() query.Readiness {
	return query.Readiness{Ready: true, Role: "shard"}
}

// Handler returns the shard's HTTP surface:
//
//	GET  /healthz         liveness
//	GET  /readyz          readiness
//	GET  /v1/shard/meta   which blocks this shard owns, with sums
//	POST /v1/shard/eval   batched block-engine ops
func (s *Shard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Readiness())
	})
	mux.HandleFunc("GET /v1/shard/meta", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.meta)
	})
	mux.HandleFunc("POST /v1/shard/eval", s.serveEval)
	return mux
}

func (s *Shard) serveEval(w http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding eval request: %w", err))
		return
	}
	if len(req.Ops) == 0 || len(req.Ops) > maxEvalOps {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: eval request carries %d ops (want 1..%d)", len(req.Ops), maxEvalOps))
		return
	}
	resp := EvalResponse{Results: make([]EvalResult, len(req.Ops))}
	for i, op := range req.Ops {
		res, err := s.eval(op)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: op %d: %w", i, err))
			return
		}
		resp.Results[i] = res
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// eval dispatches one op to the owned block's engine — the same localBlock
// adapter the in-process factored engine uses, so a sharded evaluation is
// the identical arithmetic behind one HTTP hop.
func (s *Shard) eval(op EvalOp) (EvalResult, error) {
	if !s.owned[op.Block] {
		return EvalResult{}, fmt.Errorf("block %d not owned by shard %d/%d", op.Block, s.index, s.total)
	}
	if err := s.checkOp(op); err != nil {
		return EvalResult{}, err
	}
	eng := s.eng.Block(op.Block)
	switch op.Op {
	case opSumPinned:
		v, err := eng.SumPinned(op.Vars, op.Values)
		return EvalResult{Scalar: FromFloat(v)}, err
	case opSumFixed:
		v, err := eng.SumFixed(op.Fixed)
		return EvalResult{Scalar: FromFloat(v)}, err
	case opMarginalFixed:
		arr, err := eng.MarginalFixed(op.Vars, op.Fixed)
		if err != nil {
			return EvalResult{}, err
		}
		return EvalResult{Array: FromFloats(arr)}, nil
	case opCellValue:
		v, err := eng.CellValue(op.Acc.Float(), op.Cell)
		return EvalResult{Scalar: FromFloat(v)}, err
	case opArgmaxFixed:
		cell, err := eng.ArgmaxFixed(op.Fixed)
		if err != nil {
			return EvalResult{}, err
		}
		return EvalResult{Cell: cell}, nil
	default:
		return EvalResult{}, fmt.Errorf("unknown op %q", op.Op)
	}
}

// checkOp bounds-checks an op's positions and values against the block's
// local shape: the engine's hot paths index without the defensive checks a
// network peer must not be able to trip.
func (s *Shard) checkOp(op EvalOp) error {
	cards := s.cards[op.Block]
	w := len(cards)
	if op.Op == opSumPinned && len(op.Vars) != len(op.Values) {
		return fmt.Errorf("%d vars with %d values", len(op.Vars), len(op.Values))
	}
	for i, v := range op.Vars {
		if v < 0 || v >= w {
			return fmt.Errorf("var %d out of block range [0,%d)", v, w)
		}
		// marginal_fixed sends kept vars without values; sum_pinned pairs them.
		if i < len(op.Values) && (op.Values[i] < 0 || op.Values[i] >= cards[v]) {
			return fmt.Errorf("value %d out of range for block var %d", op.Values[i], v)
		}
	}
	if len(op.Fixed) > w {
		return fmt.Errorf("%d pins for %d block vars", len(op.Fixed), w)
	}
	for v, f := range op.Fixed {
		if f >= cards[v] {
			return fmt.Errorf("pin %d out of range for block var %d", f, v)
		}
	}
	if op.Op == opCellValue {
		if len(op.Cell) != w {
			return fmt.Errorf("cell has %d coordinates, block has %d vars", len(op.Cell), w)
		}
		for v, x := range op.Cell {
			if x < 0 || x >= cards[v] {
				return fmt.Errorf("cell coordinate %d out of range for block var %d", x, v)
			}
		}
	}
	return nil
}
