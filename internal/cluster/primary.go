package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"pka/internal/kb"
	"pka/internal/query"
	"pka/internal/replog"
)

// Bank is the serving-layer surface of an updatable data bank: everything
// the cluster roles need from the model without importing the public pka
// package (the root package adapts *pka.Model to it). Version must count
// successfully applied observe batches, starting at 0 for a fresh load.
type Bank interface {
	query.Querier
	query.Ingestor
	SaveSnapshot(w io.Writer) error
	Version() int64
}

// maxLogPage bounds how many records one GET /v1/log response carries.
const maxLogPage = 1024

// defaultLogPage is the page size when the client does not ask.
const defaultLogPage = 256

// Primary wraps a Bank with the replicated observe log: every applied
// batch is appended as one log record, offsets in lockstep with the model
// version, and the log's tail plus a consistent snapshot are served over
// HTTP for replicas to boot from and follow.
//
// The embedded Bank serves every query method unchanged; ObserveLabeled is
// overridden to hold the apply+append critical section. Should a batch
// apply but fail to reach the log, the primary marks itself broken:
// replicas could never see that batch, so continuing to serve writes would
// fork the fleet. A broken primary fails observes and reports unready
// while queries keep draining.
type Primary struct {
	Bank
	log *replog.Log
	mu  sync.Mutex
	// broken is the divergence fault, nil while healthy; guarded by mu.
	broken error
}

// NewPrimary binds a bank to its observe log. The bank's version must
// equal the log's next offset — the caller replays the log into the bank
// first (Replay), so a primary always restarts exactly where it stopped.
func NewPrimary(bank Bank, log *replog.Log) (*Primary, error) {
	if v, n := bank.Version(), log.Next(); uint64(v) != n {
		return nil, fmt.Errorf("cluster: bank version %d out of step with log offset %d (seed snapshot must predate the log)", v, n)
	}
	return &Primary{Bank: bank, log: log}, nil
}

// Err returns the fault that broke the primary, nil while healthy.
func (p *Primary) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.broken
}

// ObserveLabeled applies the batch to the bank and appends it to the log
// as one critical section, so record offsets equal the order batches were
// applied in and the model version stays in lockstep with the log.
func (p *Primary) ObserveLabeled(rows [][]string) (query.IngestReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken != nil {
		return query.IngestReport{}, fmt.Errorf("cluster: primary is broken, rejecting writes: %w", p.broken)
	}
	payload, err := json.Marshal(logRecord{Rows: rows})
	if err != nil {
		return query.IngestReport{}, fmt.Errorf("cluster: encoding log record: %w", err)
	}
	rep, err := p.Bank.ObserveLabeled(rows)
	if err != nil {
		// The bank rejected or rolled back the batch — nothing applied,
		// nothing to log.
		return rep, err
	}
	off, err := p.log.Append(payload)
	if err != nil {
		// The batch IS applied locally but replicas can never receive it:
		// serving further writes would fork the fleet, so fail closed.
		p.broken = fmt.Errorf("batch %d applied but not logged: %w", rep.Version-1, err)
		return rep, fmt.Errorf("cluster: %w", p.broken)
	}
	if int64(off)+1 != rep.Version {
		p.broken = fmt.Errorf("log offset %d out of step with model version %d", off, rep.Version)
		return rep, fmt.Errorf("cluster: %w", p.broken)
	}
	return rep, nil
}

// Readiness reports the primary's routing state: ready until a divergence
// fault breaks it.
func (p *Primary) Readiness() query.Readiness {
	p.mu.Lock()
	defer p.mu.Unlock()
	rd := query.Readiness{Ready: p.broken == nil, Role: "primary", Version: p.Bank.Version()}
	if p.broken != nil {
		rd.Error = p.broken.Error()
	}
	return rd
}

// KnowledgeBase exposes the bank's compiled knowledge base when it carries
// one, keeping the batch endpoint's shared-session fast path intact behind
// the primary wrapper (nil falls back to per-query execution).
func (p *Primary) KnowledgeBase() *kb.KnowledgeBase {
	if kp, ok := p.Bank.(interface{ KnowledgeBase() *kb.KnowledgeBase }); ok {
		return kp.KnowledgeBase()
	}
	return nil
}

// Replay applies every log record from offset `from` through the bank —
// the primary's boot catch-up (and the tail of a replica bootstrap when it
// shares the log file). Returns the next offset after the last applied
// record.
func Replay(l *replog.Log, bank Bank, from uint64) (uint64, error) {
	for {
		recs, next, err := l.Read(from, defaultLogPage)
		if err != nil {
			return from, err
		}
		if len(recs) == 0 {
			return from, nil
		}
		for i, raw := range recs {
			var rec logRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return from, fmt.Errorf("cluster: decoding log record %d: %w", from+uint64(i), err)
			}
			if _, err := bank.ObserveLabeled(rec.Rows); err != nil {
				return from, fmt.Errorf("cluster: replaying log record %d: %w", from+uint64(i), err)
			}
		}
		from = next
	}
}

// Handler returns the primary's HTTP surface: the standard query endpoints
// are mounted by the caller (internal/server over the Primary itself);
// this adds the replication endpoints.
//
//	GET /v1/log?from=N[&max=M]  tail the observe log from offset N
//	GET /v1/snapshot            consistent PKAS snapshot + X-Pka-Offset
func (p *Primary) Handler(base http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", base)
	mux.HandleFunc("GET /v1/log", p.serveLog)
	mux.HandleFunc("GET /v1/snapshot", p.serveSnapshot)
	return mux
}

// writeJSONError mirrors the query server's error body shape.
func writeJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func (p *Primary) serveLog(w http.ResponseWriter, r *http.Request) {
	fromStr := r.URL.Query().Get("from")
	from, err := strconv.ParseUint(fromStr, 10, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad from %q", fromStr))
		return
	}
	max := defaultLogPage
	if s := r.URL.Query().Get("max"); s != "" {
		if max, err = strconv.Atoi(s); err != nil || max < 1 {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad max %q", s))
			return
		}
		if max > maxLogPage {
			max = maxLogPage
		}
	}
	recs, next, err := p.log.Read(from, max)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	resp := logResponse{From: from, Next: next, End: p.log.Next(), Records: make([]json.RawMessage, len(recs))}
	for i, rec := range recs {
		resp.Records[i] = json.RawMessage(rec)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// serveSnapshot streams a PKAS snapshot taken under the ingest mutex, so
// the snapshot's state corresponds exactly to the log offset in the
// X-Pka-Offset header — the pair a replica boots from.
func (p *Primary) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	var buf bytes.Buffer
	err := p.Bank.SaveSnapshot(&buf)
	off := p.log.Next()
	p.mu.Unlock()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, fmt.Errorf("cluster: snapshotting: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Pka-Offset", strconv.FormatUint(off, 10))
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}
