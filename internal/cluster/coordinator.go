package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"pka/internal/contingency"
	"pka/internal/dataset"
	"pka/internal/kb"
	"pka/internal/maxent"
	"pka/internal/query"
	"pka/internal/rules"
)

// shardClient speaks one shard's eval protocol.
type shardClient struct {
	base   string
	client *http.Client
	// cache, when armed, memoizes eval responses (see cache.go); shared
	// by every client of one coordinator.
	cache *evalCacheHolder
}

func (c *shardClient) meta() (ShardMeta, error) {
	resp, err := c.client.Get(c.base + "/v1/shard/meta")
	if err != nil {
		return ShardMeta{}, fmt.Errorf("cluster: fetching %s meta: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ShardMeta{}, fmt.Errorf("cluster: %s meta returned %s", c.base, resp.Status)
	}
	var m ShardMeta
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return ShardMeta{}, fmt.Errorf("cluster: decoding %s meta: %w", c.base, err)
	}
	return m, nil
}

// eval posts one op and returns its result, short-circuiting through the
// coordinator's remote-eval memo when it is armed. The engine's
// combination loops call block primitives one at a time, so one op per
// request keeps the client exactly as wide as the evaluation seam.
func (c *shardClient) eval(op EvalOp) (EvalResult, error) {
	if cc := c.cache.c.Load(); cc != nil {
		ks := evalKeyPool.Get().(*evalKeyBuf)
		key := appendEvalKey(ks.buf[:0], op)
		ks.buf = key
		if v, ok := cc.Get(key, 0); ok {
			evalKeyPool.Put(ks)
			return copyEvalResult(v.(EvalResult)), nil
		}
		res, err := c.evalRemote(op)
		if err == nil {
			cc.Put(key, 0, copyEvalResult(res), evalResultCost(res))
		}
		evalKeyPool.Put(ks)
		return res, err
	}
	return c.evalRemote(op)
}

// evalRemote is the uncached wire call behind eval.
func (c *shardClient) evalRemote(op EvalOp) (EvalResult, error) {
	body, err := json.Marshal(EvalRequest{Ops: []EvalOp{op}})
	if err != nil {
		return EvalResult{}, fmt.Errorf("cluster: encoding eval: %w", err)
	}
	resp, err := c.client.Post(c.base+"/v1/shard/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		return EvalResult{}, fmt.Errorf("cluster: shard %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			return EvalResult{}, fmt.Errorf("cluster: shard %s: %s", c.base, eb.Error)
		}
		return EvalResult{}, fmt.Errorf("cluster: shard %s returned %s", c.base, resp.Status)
	}
	var er EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return EvalResult{}, fmt.Errorf("cluster: decoding shard %s response: %w", c.base, err)
	}
	if len(er.Results) != 1 {
		return EvalResult{}, fmt.Errorf("cluster: shard %s answered %d results for 1 op", c.base, len(er.Results))
	}
	return er.Results[0], nil
}

// remoteBlock is the coordinator-side maxent.BlockEngine: each primitive is
// one eval op against the owning shard, with every float crossing the wire
// as IEEE-754 bits. Sum never leaves the process — the shard advertised it
// in its meta and it is constant while serving.
type remoteBlock struct {
	c     *shardClient
	block int
	sum   float64
}

func (r remoteBlock) Sum() (float64, error) { return r.sum, nil }

func (r remoteBlock) SumPinned(vars, values []int) (float64, error) {
	res, err := r.c.eval(EvalOp{Op: opSumPinned, Block: r.block, Vars: vars, Values: values})
	if err != nil {
		return 0, err
	}
	return res.Scalar.Float(), nil
}

func (r remoteBlock) SumFixed(fixed []int) (float64, error) {
	res, err := r.c.eval(EvalOp{Op: opSumFixed, Block: r.block, Fixed: fixed})
	if err != nil {
		return 0, err
	}
	return res.Scalar.Float(), nil
}

func (r remoteBlock) MarginalFixed(vars, fixed []int) ([]float64, error) {
	res, err := r.c.eval(EvalOp{Op: opMarginalFixed, Block: r.block, Vars: vars, Fixed: fixed})
	if err != nil {
		return nil, err
	}
	return Floats(res.Array), nil
}

func (r remoteBlock) CellValue(init float64, cell []int) (float64, error) {
	res, err := r.c.eval(EvalOp{Op: opCellValue, Block: r.block, Acc: FromFloat(init), Cell: cell})
	if err != nil {
		return 0, err
	}
	return res.Scalar.Float(), nil
}

func (r remoteBlock) ArgmaxFixed(fixed []int) ([]int, error) {
	res, err := r.c.eval(EvalOp{Op: opArgmaxFixed, Block: r.block, Fixed: fixed})
	if err != nil {
		return nil, err
	}
	return res.Cell, nil
}

// Coordinator serves one factored knowledge base whose block evaluation is
// spread across shard processes. It compiles its own copy of the snapshot
// to know the model's exact shape, validates every shard's advertised slice
// bit for bit against that shape, then assembles a distributed engine whose
// combination loops are the in-process factored code — so every answer is
// bit-identical to single-process serving of the same snapshot.
type Coordinator struct {
	kbase  *kb.KnowledgeBase // remote-engined kb every query runs on
	shards int
	// evalCache is the shared remote-eval memo holder every shardClient
	// consults; empty until EnableCache arms it.
	evalCache *evalCacheHolder
}

// NewCoordinator connects a local snapshot to its shard fleet. urls[i] must
// serve `-shard i/len(urls)` of the same snapshot; any mismatch in block
// structure, a0, or block sums (compared as raw bits) is refused before a
// single query is routed.
func NewCoordinator(kbase *kb.KnowledgeBase, urls []string, client *http.Client) (*Coordinator, error) {
	if kbase == nil {
		return nil, fmt.Errorf("cluster: nil knowledge base")
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard URL")
	}
	if client == nil {
		client = http.DefaultClient
	}
	local, err := kbase.Model().Compile()
	if err != nil {
		return nil, err
	}
	if !local.Factored() {
		return nil, fmt.Errorf("cluster: model is dense (single block) — sharding needs a factored model; serve it whole instead")
	}
	n := local.NumBlocks()
	blocks := make([]maxent.RemoteBlock, n)
	seen := make([]bool, n)
	holder := &evalCacheHolder{}
	for i, url := range urls {
		sc := &shardClient{base: url, client: client, cache: holder}
		m, err := sc.meta()
		if err != nil {
			return nil, err
		}
		if m.Shard != i || m.Shards != len(urls) {
			return nil, fmt.Errorf("cluster: %s serves shard %d/%d, coordinator expected %d/%d", url, m.Shard, m.Shards, i, len(urls))
		}
		if m.Attributes != local.R() || m.Blocks != n {
			return nil, fmt.Errorf("cluster: %s model shape %d attrs/%d blocks != local %d/%d (different snapshot?)", url, m.Attributes, m.Blocks, local.R(), n)
		}
		if m.A0 != FromFloat(local.A0()) {
			return nil, fmt.Errorf("cluster: %s a0 differs from local snapshot (different fit?)", url)
		}
		for _, bm := range m.Owned {
			if bm.Index < 0 || bm.Index >= n {
				return nil, fmt.Errorf("cluster: %s claims block %d of %d", url, bm.Index, n)
			}
			if bm.Index%len(urls) != i {
				return nil, fmt.Errorf("cluster: %s claims block %d, owned by shard %d", url, bm.Index, bm.Index%len(urls))
			}
			if seen[bm.Index] {
				return nil, fmt.Errorf("cluster: block %d claimed twice", bm.Index)
			}
			want := local.BlockVars(bm.Index)
			if len(bm.Vars) != len(want) {
				return nil, fmt.Errorf("cluster: %s block %d has %d vars, local has %d", url, bm.Index, len(bm.Vars), len(want))
			}
			for j, v := range bm.Vars {
				if v != want[j] {
					return nil, fmt.Errorf("cluster: %s block %d vars %v != local %v", url, bm.Index, bm.Vars, want)
				}
			}
			if bm.Sum != FromFloat(local.BlockSum(bm.Index)) {
				return nil, fmt.Errorf("cluster: %s block %d sum differs from local snapshot bitwise", url, bm.Index)
			}
			seen[bm.Index] = true
			blocks[bm.Index] = maxent.RemoteBlock{
				Vars: want,
				Sum:  bm.Sum.Float(),
				Eng:  remoteBlock{c: sc, block: bm.Index, sum: bm.Sum.Float()},
			}
		}
	}
	for b, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("cluster: block %d not claimed by any shard", b)
		}
	}
	eng, err := maxent.NewDistributed(local.Names(), local.Cards(), local.A0(), blocks)
	if err != nil {
		return nil, err
	}
	rkb, err := kb.NewWithEngine(kbase.Schema(), kbase.Model(), eng)
	if err != nil {
		return nil, err
	}
	return &Coordinator{kbase: rkb, shards: len(urls), evalCache: holder}, nil
}

var _ query.Querier = (*Coordinator)(nil)

// Schema returns the attribute layout queries are expressed against.
func (c *Coordinator) Schema() *dataset.Schema { return c.kbase.Schema() }

// Probability returns the joint probability of the assignments.
func (c *Coordinator) Probability(assigns ...kb.Assignment) (float64, error) {
	return c.kbase.Probability(assigns...)
}

// Conditional returns P(target | given).
func (c *Coordinator) Conditional(target, given []kb.Assignment) (float64, error) {
	return c.kbase.Conditional(target, given)
}

// Distribution returns the conditional distribution of attr given evidence.
func (c *Coordinator) Distribution(attr string, given ...kb.Assignment) (map[string]float64, error) {
	return c.kbase.Distribution(attr, given...)
}

// MostLikely returns attr's most probable value given the evidence.
func (c *Coordinator) MostLikely(attr string, given ...kb.Assignment) (string, float64, error) {
	return c.kbase.MostLikely(attr, given...)
}

// Lift returns P(target|given)/P(target).
func (c *Coordinator) Lift(target kb.Assignment, given ...kb.Assignment) (float64, error) {
	return c.kbase.Lift(target, given...)
}

// MostProbableExplanation returns the most likely full completion of the
// evidence.
func (c *Coordinator) MostProbableExplanation(given ...kb.Assignment) (kb.Explanation, error) {
	return c.kbase.MostProbableExplanation(given...)
}

// Rules extracts IF-THEN rules from the stored constraints. Rule mining
// reads only the model's constraint structure plus block marginals, so it
// runs through the same distributed engine.
func (c *Coordinator) Rules(opts rules.Options) ([]rules.Rule, error) {
	return rules.FromKnowledgeBase(c.kbase, opts)
}

// Explain renders the stored probability formula with value labels.
func (c *Coordinator) Explain() string { return c.kbase.Explain() }

// LogLoss scores validation counts through the distributed engine.
func (c *Coordinator) LogLoss(counts contingency.Counts) (float64, error) {
	return c.kbase.LogLoss(counts)
}

// KnowledgeBase keeps the batch endpoint's shared-session fast path: batch
// sessions share denominators and conditional sweeps exactly as in-process,
// each priced once over the shard fleet instead of once per query.
func (c *Coordinator) KnowledgeBase() *kb.KnowledgeBase { return c.kbase }

// Readiness: a coordinator is ready once constructed — every shard's meta
// was validated before NewCoordinator returned.
func (c *Coordinator) Readiness() query.Readiness {
	return query.Readiness{Ready: true, Role: "coordinator"}
}
