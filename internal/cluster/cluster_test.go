package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pka"
	"pka/internal/cluster"
	"pka/internal/kb"
	"pka/internal/query"
	"pka/internal/replog"
	"pka/internal/server"
)

// newBank discovers a small dense model to act as the replicated data bank.
func newBank(t testing.TB) *pka.Model {
	t.Helper()
	schema, err := pka.NewSchema([]pka.Attribute{
		{Name: "A", Values: []string{"a0", "a1", "a2"}},
		{Name: "B", Values: []string{"b0", "b1"}},
		{Name: "C", Values: []string{"c0", "c1"}},
		{Name: "D", Values: []string{"d0", "d1", "d2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := pka.NewSparseTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([][]int, 300)
	for i := range cells {
		a := i % 3
		c := (i / 3) % 2
		cells[i] = []int{a, a % 2, c, c}
	}
	if err := tab.ObserveBatch(cells); err != nil {
		t.Fatal(err)
	}
	model, err := pka.DiscoverSparse(tab, schema, pka.Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// batch returns the k-th deterministic labeled observe batch.
func batch(k int) [][]string {
	rows := make([][]string, 5)
	for i := range rows {
		a := (k + i) % 3
		c := (k + 2*i) % 2
		rows[i] = []string{
			fmt.Sprintf("a%d", a),
			fmt.Sprintf("b%d", (a+k)%2),
			fmt.Sprintf("c%d", c),
			fmt.Sprintf("d%d", (c+k+i)%3),
		}
	}
	return rows
}

// benchQueries is one of every query kind over the bank schema.
func benchQueries() []query.Query {
	return []query.Query{
		{Kind: query.KindProbability, Target: []kb.Assignment{{Attr: "A", Value: "a1"}}},
		{Kind: query.KindProbability, Target: []kb.Assignment{{Attr: "A", Value: "a0"}, {Attr: "D", Value: "d1"}}},
		{Kind: query.KindConditional, Target: []kb.Assignment{{Attr: "B", Value: "b1"}}, Given: []kb.Assignment{{Attr: "A", Value: "a0"}}},
		{Kind: query.KindDistribution, Attr: "D", Given: []kb.Assignment{{Attr: "C", Value: "c1"}}},
		{Kind: query.KindMostLikely, Attr: "B", Given: []kb.Assignment{{Attr: "A", Value: "a2"}}},
		{Kind: query.KindLift, Target: []kb.Assignment{{Attr: "D", Value: "d2"}}, Given: []kb.Assignment{{Attr: "C", Value: "c0"}}},
		{Kind: query.KindMPE, Given: []kb.Assignment{{Attr: "A", Value: "a1"}}},
	}
}

// answerSet runs the queries and returns the exact wire bytes of every
// result — the shortest-round-trip float rendering is injective on bit
// patterns, so equal bytes means bit-identical answers.
func answerSet(t testing.TB, q query.Querier, queries []query.Query) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, qu := range queries {
		res, err := query.Answer(q, qu)
		if err != nil {
			t.Fatalf("query %+v: %v", qu, err)
		}
		if err := query.EncodeResult(&buf, res); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func openLog(t testing.TB) *replog.Log {
	t.Helper()
	lg, err := replog.Open(t.TempDir() + "/observe.log")
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// TestPrimaryVersionLockstepAndReplay: the primary keeps model version and
// log offset in lockstep, and replaying its log over the seed snapshot
// rebuilds a bank with bit-identical answers — the replica convergence
// argument in one process.
func TestPrimaryVersionLockstepAndReplay(t *testing.T) {
	bank := newBank(t)
	var seed bytes.Buffer
	if err := bank.SaveSnapshot(&seed); err != nil {
		t.Fatal(err)
	}
	lg := openLog(t)
	defer lg.Close()
	p, err := cluster.NewPrimary(bank, lg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		rep, err := p.ObserveLabeled(batch(k))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Version != int64(k)+1 {
			t.Fatalf("batch %d: version %d, want %d", k, rep.Version, k+1)
		}
		if lg.Next() != uint64(k)+1 {
			t.Fatalf("batch %d: log next %d, want %d", k, lg.Next(), k+1)
		}
	}
	if rd := p.Readiness(); !rd.Ready || rd.Role != "primary" || rd.Version != 4 {
		t.Fatalf("primary readiness %+v", rd)
	}

	bank2, err := pka.LoadModelSnapshot(bytes.NewReader(seed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	next, err := cluster.Replay(lg, bank2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != 4 || bank2.Version() != 4 {
		t.Fatalf("replay stopped at offset %d, bank version %d, want 4/4", next, bank2.Version())
	}
	if a, b := answerSet(t, bank, benchQueries()), answerSet(t, bank2, benchQueries()); !bytes.Equal(a, b) {
		t.Fatalf("replayed bank diverges from primary:\n%s\nvs\n%s", b, a)
	}
	// The replayed bank is in step with the log: it can take over as primary.
	if _, err := cluster.NewPrimary(bank2, lg); err != nil {
		t.Fatalf("replayed bank rejected as primary: %v", err)
	}
}

// TestNewPrimaryRejectsOutOfStepBank: a fresh bank (version 0) cannot front
// a log that already holds records — the caller must replay first.
func TestNewPrimaryRejectsOutOfStepBank(t *testing.T) {
	bank := newBank(t)
	lg := openLog(t)
	defer lg.Close()
	p, err := cluster.NewPrimary(bank, lg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ObserveLabeled(batch(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.NewPrimary(newBank(t), lg); err == nil || !strings.Contains(err.Error(), "out of step") {
		t.Fatalf("got %v, want out-of-step error", err)
	}
}

// TestPrimaryFailsClosedWhenLogBreaks: a batch that applies but cannot be
// logged would be invisible to every replica, so the primary must stop
// accepting writes (while reads keep draining) and report unready.
func TestPrimaryFailsClosedWhenLogBreaks(t *testing.T) {
	bank := newBank(t)
	lg := openLog(t)
	p, err := cluster.NewPrimary(bank, lg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ObserveLabeled(batch(0)); err != nil {
		t.Fatal(err)
	}
	lg.Close() // simulated log device failure
	if _, err := p.ObserveLabeled(batch(1)); err == nil {
		t.Fatal("observe succeeded with a dead log")
	}
	if p.Err() == nil {
		t.Fatal("primary not marked broken")
	}
	if rd := p.Readiness(); rd.Ready || rd.Error == "" {
		t.Fatalf("broken primary reports ready: %+v", rd)
	}
	if _, err := p.ObserveLabeled(batch(2)); err == nil || !strings.Contains(err.Error(), "rejecting writes") {
		t.Fatalf("got %v, want rejected write", err)
	}
	// Reads still serve the last consistent state.
	if _, err := p.Probability(kb.Assignment{Attr: "A", Value: "a0"}); err != nil {
		t.Fatalf("read on broken primary: %v", err)
	}
}

func loadBank(r io.Reader) (cluster.Bank, error) { return pka.LoadModelSnapshot(r) }

// startPrimary serves a fresh primary over HTTP, returning it and the
// test server.
func startPrimary(t testing.TB) (*cluster.Primary, *httptest.Server) {
	t.Helper()
	lg := openLog(t)
	t.Cleanup(func() { lg.Close() })
	p, err := cluster.NewPrimary(newBank(t), lg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler(server.New(p)))
	t.Cleanup(srv.Close)
	return p, srv
}

func observeHTTP(t testing.TB, url string, rows [][]string) query.IngestReport {
	t.Helper()
	body, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("observe returned %s: %s", resp.Status, msg)
	}
	var rep query.IngestReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func waitVersion(t testing.TB, r *cluster.Replica, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.Version() < want {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at version %d, want %d", r.Version(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaBootstrapFollowAndRestart is the replication path end to end
// in one process: bootstrap from the primary's snapshot, tail the log,
// serve bit-identical answers, survive a kill/restart without
// double-applying, and refuse writes.
func TestReplicaBootstrapFollowAndRestart(t *testing.T) {
	_, srv := startPrimary(t)

	// Two batches through the wire before any replica exists; the observe
	// response carries the new version (read-your-writes token).
	for k := 0; k < 2; k++ {
		if rep := observeHTTP(t, srv.URL, batch(k)); rep.Version != int64(k)+1 {
			t.Fatalf("observe %d: version %d, want %d", k, rep.Version, k+1)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := cluster.BootReplica(ctx, srv.URL, loadBank, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version() != 2 {
		t.Fatalf("replica booted at version %d, want 2 (snapshot offset)", rep.Version())
	}

	followCtx, kill := context.WithCancel(ctx)
	followDone := make(chan error, 1)
	go func() { followDone <- rep.Follow(followCtx) }()

	for k := 2; k < 5; k++ {
		observeHTTP(t, srv.URL, batch(k))
	}
	waitVersion(t, rep, 5)

	// Bit-identical serving: compare against a bank rebuilt by replaying
	// the same batches locally.
	local := newBank(t)
	for k := 0; k < 5; k++ {
		if _, err := local.ObserveLabeled(batch(k)); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := answerSet(t, local, benchQueries()), answerSet(t, rep, benchQueries()); !bytes.Equal(a, b) {
		t.Fatalf("replica diverges from local replay:\n%s\nvs\n%s", b, a)
	}
	if rd := rep.Readiness(); !rd.Ready || rd.Role != "replica" || rd.Lag != 0 {
		t.Fatalf("caught-up replica readiness %+v", rd)
	}

	// Kill the follower, let the primary move on, restart: the replica
	// resumes from its applied offset — versions land exactly on the
	// primary's, and answers stay bit-identical (a double-apply would
	// shift counts and diverge).
	kill()
	if err := <-followDone; err != nil {
		t.Fatalf("killed follower returned %v, want nil", err)
	}
	for k := 5; k < 8; k++ {
		if _, err := local.ObserveLabeled(batch(k)); err != nil {
			t.Fatal(err)
		}
		observeHTTP(t, srv.URL, batch(k))
	}
	go func() { followDone <- rep.Follow(ctx) }()
	waitVersion(t, rep, 8)
	if rep.Version() != 8 {
		t.Fatalf("restarted replica at version %d, want exactly 8", rep.Version())
	}
	if a, b := answerSet(t, local, benchQueries()), answerSet(t, rep, benchQueries()); !bytes.Equal(a, b) {
		t.Fatalf("restarted replica diverges:\n%s\nvs\n%s", b, a)
	}

	// A second replica booting late converges to the same bytes.
	rep2, err := cluster.BootReplica(ctx, srv.URL, loadBank, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Version() != 8 {
		t.Fatalf("late replica booted at version %d, want 8", rep2.Version())
	}
	if a, b := answerSet(t, rep, benchQueries()), answerSet(t, rep2, benchQueries()); !bytes.Equal(a, b) {
		t.Fatalf("replicas disagree:\n%s\nvs\n%s", b, a)
	}

	// Replicas refuse writes: the serving layer answers 501.
	rsrv := httptest.NewServer(server.New(rep))
	defer rsrv.Close()
	body, _ := json.Marshal(map[string]any{"rows": batch(0)})
	resp, err := http.Post(rsrv.URL+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("observe on replica returned %d, want 501", resp.StatusCode)
	}
	// And its readyz reports the replica role with its applied version.
	resp, err = http.Get(rsrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd query.Readiness
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rd.Ready || rd.Role != "replica" || rd.Version != 8 {
		t.Fatalf("replica readyz %d %+v", resp.StatusCode, rd)
	}
}

// TestReplicaPoisonedByBadRecord: a log record the bank refuses to apply
// forks the replica's state permanently — Follow must poison it, readiness
// must flip, and the fault must persist.
func TestReplicaPoisonedByBadRecord(t *testing.T) {
	// A fake primary serving an empty snapshot boot is complex; instead
	// drive catchUp against a handler returning a record with an unknown
	// label. Boot from a real primary first.
	_, srv := startPrimary(t)
	ctx := context.Background()
	rep, err := cluster.BootReplica(ctx, srv.URL, loadBank, 2*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Point the replica at an impostor primary whose log holds garbage.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"from":0,"next":1,"end":1,"records":[{"rows":[["nope","b0","c0","d0"]]}]}`)
	}))
	defer bad.Close()
	rep2, err := cluster.BootReplica(ctx, srv.URL, loadBank, 2*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	cluster.RetargetForTest(rep2, bad.URL)
	if err := rep2.Follow(ctx); err == nil {
		t.Fatal("follow of a poisoned log returned nil")
	}
	if rep2.Err() == nil {
		t.Fatal("replica not poisoned")
	}
	if rd := rep2.Readiness(); rd.Ready || rd.Error == "" {
		t.Fatalf("poisoned replica reports ready: %+v", rd)
	}
	// The healthy replica is unaffected.
	if rd := rep.Readiness(); !rd.Ready {
		t.Fatalf("healthy replica unready: %+v", rd)
	}
}
