package cluster

import (
	"strconv"
	"sync"
	"sync/atomic"

	"pka/internal/memo"
	"pka/internal/query"
)

// The cluster tier: a coordinator memoizes remote POST /v1/shard/eval
// responses keyed (op, block, args). A coordinator's model is an
// immutable snapshot — shards refuse to serve a different fit — so the
// entries live at version 0 and only LRU pressure retires them. Every
// repeated block primitive (the same pinned sum, the same marginal sweep)
// becomes a map lookup instead of a network round-trip.

// evalCacheHolder shares one optional remote-eval cache across every
// shardClient of a coordinator; the pointer is atomic so EnableCache can
// arm it after construction without racing in-flight evals.
type evalCacheHolder struct {
	c atomic.Pointer[memo.Cache]
}

// evalKeyPool recycles the eval-key rendering scratch.
var evalKeyPool = sync.Pool{New: func() any { return new(evalKeyBuf) }}

type evalKeyBuf struct{ buf []byte }

// appendEvalKey renders one EvalOp canonically: op and block, then every
// argument slice length-prefixed so adjacent fields cannot collide, with
// the accumulator as raw bits.
func appendEvalKey(dst []byte, op EvalOp) []byte {
	dst = append(dst, op.Op...)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(op.Block), 10)
	for _, part := range [3][]int{op.Vars, op.Values, op.Fixed} {
		dst = append(dst, '|')
		for _, v := range part {
			dst = strconv.AppendInt(dst, int64(v), 10)
			dst = append(dst, ',')
		}
	}
	dst = append(dst, '|')
	dst = strconv.AppendUint(dst, uint64(op.Acc), 16)
	dst = append(dst, '|')
	for _, v := range op.Cell {
		dst = strconv.AppendInt(dst, int64(v), 10)
		dst = append(dst, ',')
	}
	return dst
}

// copyEvalResult guards a cached result's mutable Cell slice from caller
// mutation; Array is only ever read through Floats (which copies), so it
// may be shared.
func copyEvalResult(r EvalResult) EvalResult {
	if r.Cell != nil {
		r.Cell = append([]int(nil), r.Cell...)
	}
	return r
}

// evalResultCost estimates a result's resident bytes.
func evalResultCost(r EvalResult) int64 {
	return int64(16 + 8*len(r.Array) + 8*len(r.Cell))
}

// EnableCache arms the coordinator's serving caches: an engine-tier memo
// on its knowledge base (evidence denominators, marginal sweeps, MPE
// completions) and the remote-eval memo above. capacityBytes sizes each
// tier; 0 is a no-op, negative means unbounded. Call before serving —
// the knowledge-base swap is not synchronized with in-flight queries.
func (c *Coordinator) EnableCache(capacityBytes int64) {
	if capacityBytes == 0 {
		return
	}
	engine := memo.New(capacityBytes)
	c.kbase = c.kbase.WithCache(engine, 0)
	remote := memo.New(capacityBytes)
	c.evalCache.c.Store(remote)
}

// CacheStats forwards the bank's cache tiers: Primary embeds Bank as an
// interface, so the concrete model's optional reporter method is not
// promoted and must be surfaced by hand.
func (p *Primary) CacheStats() []query.CacheTierStats {
	if cs, ok := p.Bank.(query.CacheStatsReporter); ok {
		return cs.CacheStats()
	}
	return nil
}

// CacheStats forwards the booted bank's cache tiers (see Primary's note).
func (r *Replica) CacheStats() []query.CacheTierStats {
	if cs, ok := r.bank.(query.CacheStatsReporter); ok {
		return cs.CacheStats()
	}
	return nil
}

// CacheStats reports the coordinator's cache tiers for GET /v1/stats.
func (c *Coordinator) CacheStats() []query.CacheTierStats {
	var out []query.CacheTierStats
	if ec := c.kbase.Cache(); ec != nil {
		out = append(out, query.CacheTierStats{Tier: "engine", Stats: ec.Stats()})
	}
	if rc := c.evalCache.c.Load(); rc != nil {
		out = append(out, query.CacheTierStats{Tier: "cluster", Stats: rc.Stats()})
	}
	return out
}
