package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pka"
	"pka/internal/cluster"
	"pka/internal/kb"
	"pka/internal/query"
	"pka/internal/rules"
	"pka/internal/stats"
	"pka/internal/synth"
)

// wideModel discovers a factored model: 24 binary attributes put the joint
// (2^24 cells) past the dense ceiling, so the engine splits into per-pair
// constraint blocks — the shape sharding exists for.
func wideModel(t testing.TB) *pka.Model {
	t.Helper()
	truth, err := synth.WidePairs(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := truth.SampleSparse(stats.NewRNG(7), 600)
	if err != nil {
		t.Fatal(err)
	}
	model, err := pka.DiscoverSparse(tab, truth.Schema(), pka.Options{
		MaxOrder:       2,
		ScreenPairs:    true,
		ScreenCI:       true,
		MaxConstraints: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// startShards serves the model's blocks across n shard processes (httptest
// servers standing in), returning their URLs.
func startShards(t testing.TB, kbase *kb.KnowledgeBase, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		sh, err := cluster.NewShard(kbase, i, n)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(sh.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// wideQueries is one of every query kind over the wide schema.
func wideQueries() []query.Query {
	return []query.Query{
		{Kind: query.KindProbability, Target: []kb.Assignment{{Attr: "W0000", Value: "1"}}},
		{Kind: query.KindProbability, Target: []kb.Assignment{{Attr: "W0000", Value: "0"}, {Attr: "W0001", Value: "1"}}},
		{Kind: query.KindProbability, Target: []kb.Assignment{{Attr: "W0002", Value: "1"}, {Attr: "W0005", Value: "0"}}}, // spans blocks
		{Kind: query.KindConditional, Target: []kb.Assignment{{Attr: "W0001", Value: "1"}}, Given: []kb.Assignment{{Attr: "W0000", Value: "0"}}},
		{Kind: query.KindConditional, Target: []kb.Assignment{{Attr: "W0003", Value: "1"}}, Given: []kb.Assignment{{Attr: "W0002", Value: "1"}, {Attr: "W0008", Value: "0"}}},
		{Kind: query.KindDistribution, Attr: "W0004", Given: []kb.Assignment{{Attr: "W0005", Value: "1"}}},
		{Kind: query.KindMostLikely, Attr: "W0007", Given: []kb.Assignment{{Attr: "W0006", Value: "0"}}},
		{Kind: query.KindLift, Target: []kb.Assignment{{Attr: "W0009", Value: "1"}}, Given: []kb.Assignment{{Attr: "W0008", Value: "1"}}},
		{Kind: query.KindMPE, Given: []kb.Assignment{{Attr: "W0000", Value: "1"}, {Attr: "W0011", Value: "0"}}},
		{Kind: query.KindMPE},
	}
}

// TestCoordinatorBitIdenticalToLocal: every query kind answered through a
// two-shard fleet returns the exact wire bytes of in-process serving.
func TestCoordinatorBitIdenticalToLocal(t *testing.T) {
	model := wideModel(t)
	kbase := model.KnowledgeBase()
	urls := startShards(t, kbase, 2)
	coord, err := cluster.NewCoordinator(kbase, urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rd := coord.Readiness(); !rd.Ready || rd.Role != "coordinator" {
		t.Fatalf("coordinator readiness %+v", rd)
	}

	queries := wideQueries()
	local := answerSet(t, model, queries)
	remote := answerSet(t, coord, queries)
	if !bytes.Equal(local, remote) {
		t.Fatalf("sharded answers diverge from local:\n%s\nvs\n%s", remote, local)
	}

	// The batch fast path (shared sessions over the remote engine) returns
	// the same bytes too.
	batch, err := query.AnswerBatchWorkers(coord, queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i, res := range batch {
		if res.Error != "" {
			t.Fatalf("batch query %d failed: %s", i, res.Error)
		}
		if err := query.EncodeResult(&buf, res); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(local, buf.Bytes()) {
		t.Fatalf("sharded batch answers diverge from local:\n%s\nvs\n%s", buf.Bytes(), local)
	}

	// Rules mine through block marginals; Explain and LogLoss close the
	// Querier surface.
	lr, err := model.Rules(rules.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := coord.Rules(rules.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(lr)
	rj, _ := json.Marshal(rr)
	if !bytes.Equal(lj, rj) {
		t.Fatalf("sharded rules diverge:\n%s\nvs\n%s", rj, lj)
	}
	if model.Explain() != coord.Explain() {
		t.Fatal("sharded Explain diverges")
	}

	truth, err := synth.WidePairs(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	holdout, err := truth.SampleSparse(stats.NewRNG(8), 100)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := model.LogLoss(holdout)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := coord.LogLoss(holdout)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(lw) != math.Float64bits(rw) {
		t.Fatalf("sharded LogLoss %v != local %v", rw, lw)
	}
}

// TestCoordinatorRejectsMismatchedFleet: every validation gate refuses a
// wrong fleet before a query is routed.
func TestCoordinatorRejectsMismatchedFleet(t *testing.T) {
	model := wideModel(t)
	kbase := model.KnowledgeBase()
	urls := startShards(t, kbase, 2)

	if _, err := cluster.NewCoordinator(kbase, urls[:1], nil); err == nil || !strings.Contains(err.Error(), "expected") {
		t.Errorf("undersized fleet accepted: %v", err)
	}
	if _, err := cluster.NewCoordinator(kbase, []string{urls[1], urls[0]}, nil); err == nil || !strings.Contains(err.Error(), "expected") {
		t.Errorf("swapped fleet accepted: %v", err)
	}

	// A shard fleet cut from a different snapshot: same shape command but
	// different fitted floats must be refused bitwise.
	other := func(t *testing.T) *pka.Model {
		truth, err := synth.WidePairs(12, 3)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := truth.SampleSparse(stats.NewRNG(99), 600)
		if err != nil {
			t.Fatal(err)
		}
		m, err := pka.DiscoverSparse(tab, truth.Schema(), pka.Options{
			MaxOrder: 2, ScreenPairs: true, ScreenCI: true, MaxConstraints: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}(t)
	otherURLs := startShards(t, other.KnowledgeBase(), 2)
	if _, err := cluster.NewCoordinator(kbase, otherURLs, nil); err == nil {
		t.Error("fleet from a different snapshot accepted")
	}

	// Dense models have nothing to shard.
	dense := newBank(t)
	if _, err := cluster.NewShard(dense.KnowledgeBase(), 0, 2); err == nil || !strings.Contains(err.Error(), "dense") {
		t.Errorf("dense shard accepted: %v", err)
	}
	if _, err := cluster.NewCoordinator(dense.KnowledgeBase(), urls, nil); err == nil || !strings.Contains(err.Error(), "dense") {
		t.Errorf("dense coordinator accepted: %v", err)
	}
}

// TestShardRejectsBadOps: ownership and argument bounds are enforced at the
// shard boundary with 400s, never panics.
func TestShardRejectsBadOps(t *testing.T) {
	model := wideModel(t)
	urls := startShards(t, model.KnowledgeBase(), 2)

	post := func(t *testing.T, ops string) (int, string) {
		t.Helper()
		resp, err := http.Post(urls[0]+"/v1/shard/eval", "application/json",
			strings.NewReader(fmt.Sprintf(`{"ops":[%s]}`, ops)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb.Error
	}
	cases := []struct {
		name string
		op   string
		want string
	}{
		{"unowned block", `{"op":"sum_fixed","block":1}`, "not owned"},
		{"unknown op", `{"op":"explode","block":0}`, "unknown op"},
		{"var out of range", `{"op":"sum_pinned","block":0,"vars":[99],"values":[0]}`, "out of block range"},
		{"value out of range", `{"op":"sum_pinned","block":0,"vars":[0],"values":[7]}`, "out of range"},
		{"pin out of range", `{"op":"argmax_fixed","block":0,"fixed":[9]}`, "out of range"},
		{"cell shape", `{"op":"cell_value","block":0,"cell":[0]}`, "coordinates"},
		{"vars values mismatch", `{"op":"sum_pinned","block":0,"vars":[0]}`, "values"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, msg := post(t, tc.op)
			if code != http.StatusBadRequest || !strings.Contains(msg, tc.want) {
				t.Errorf("got %d %q, want 400 containing %q", code, msg, tc.want)
			}
		})
	}
}
