package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pka/internal/kb"
	"pka/internal/query"
)

// BankLoader restores an updatable bank from a PKAS snapshot stream — the
// root package's pka.LoadModelSnapshot, passed in as a function so cluster
// need not import it.
type BankLoader func(r io.Reader) (Bank, error)

// Replica is a read-only follower of a primary's data bank: it boots from
// the primary's consistent snapshot (GET /v1/snapshot, whose X-Pka-Offset
// header says which log offset the snapshot captures), then tails
// GET /v1/log from that offset, applying each observe batch through the
// same incremental-update path the primary ran. Snapshot state plus
// ordered replay is exactly the primary's history, so after applying
// offset k the replica's engine — and every answer it serves — is
// bit-identical to the primary's at version k.
//
// The embedded query.Querier serves every read. A Replica is deliberately
// NOT a query.Ingestor: POST /v1/observe on a replica answers 501; writes
// belong to the primary.
type Replica struct {
	query.Querier
	bank    Bank
	primary string
	client  *http.Client
	poll    time.Duration

	// applied is the next log offset to apply — equally, the replica's
	// model version. target is the primary's last known end offset.
	applied atomic.Int64
	target  atomic.Int64
	// caughtUp flips once applied first reaches the primary's end; before
	// that the replica reports unready so balancers skip the cold start.
	caughtUp atomic.Bool

	mu     sync.Mutex
	broken error
}

// BootReplica fetches the primary's snapshot, restores a bank from it, and
// returns a replica positioned at the snapshot's log offset. Call Follow
// to start tailing.
func BootReplica(ctx context.Context, primaryURL string, load BankLoader, poll time.Duration, client *http.Client) (*Replica, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primaryURL+"/v1/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching primary snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: primary snapshot returned %s", resp.Status)
	}
	offset, err := strconv.ParseInt(resp.Header.Get("X-Pka-Offset"), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: primary snapshot carried no X-Pka-Offset header")
	}
	bank, err := load(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: restoring primary snapshot: %w", err)
	}
	r := &Replica{
		Querier: bank,
		bank:    bank,
		primary: primaryURL,
		client:  client,
		poll:    poll,
	}
	r.applied.Store(offset)
	r.target.Store(offset)
	// The snapshot IS the primary's state at its offset: a fresh boot is
	// caught up until a log page reveals a farther end.
	r.caughtUp.Store(true)
	return r, nil
}

// Version returns the replica's model version: the log offset applied
// through. Comparable with the version /v1/observe returned on the
// primary — version-gated read-your-writes.
func (r *Replica) Version() int64 { return r.applied.Load() }

// KnowledgeBase keeps the batch endpoint's shared-session fast path on
// replicas (each batch grabs the current snapshot; a concurrent apply
// swaps the next one in atomically, exactly as on the primary).
func (r *Replica) KnowledgeBase() *kb.KnowledgeBase {
	if kp, ok := r.bank.(interface{ KnowledgeBase() *kb.KnowledgeBase }); ok {
		return kp.KnowledgeBase()
	}
	return nil
}

// Readiness reports catch-up state: unready until the replica has applied
// everything the primary had when first asked, unready again only if the
// stream breaks (a failed apply poisons the replica — it keeps serving its
// last consistent state but must be re-bootstrapped).
func (r *Replica) Readiness() query.Readiness {
	r.mu.Lock()
	broken := r.broken
	r.mu.Unlock()
	applied, target := r.applied.Load(), r.target.Load()
	rd := query.Readiness{
		Ready:   broken == nil && r.caughtUp.Load(),
		Role:    "replica",
		Version: applied,
		Target:  target,
		Lag:     target - applied,
	}
	if broken != nil {
		rd.Error = broken.Error()
	}
	return rd
}

// Err returns the fault that poisoned the replica, nil while healthy.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.broken
}

// Follow tails the primary's log until ctx is canceled, applying each
// batch in offset order. Transport errors are retried after the poll
// interval (the primary may be restarting); an apply failure is fatal —
// state has forked, so Follow poisons the replica and returns. A canceled
// context returns nil.
func (r *Replica) Follow(ctx context.Context) error {
	for {
		n, err := r.catchUp(ctx)
		switch {
		case err != nil && ctx.Err() != nil:
			return nil
		case err != nil && !isTransient(err):
			r.mu.Lock()
			r.broken = err
			r.mu.Unlock()
			return err
		case err == nil && n > 0:
			// More records may be waiting: keep draining without sleeping.
			continue
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(r.poll):
		}
	}
}

// transientError marks a fetch failure worth retrying (network flaps, a
// primary mid-restart) as opposed to an apply failure that forked state.
type transientError struct{ err error }

func (t transientError) Error() string { return t.err.Error() }
func (t transientError) Unwrap() error { return t.err }

func isTransient(err error) bool {
	_, ok := err.(transientError)
	return ok
}

// catchUp fetches and applies one page of the log, returning how many
// records were applied.
func (r *Replica) catchUp(ctx context.Context) (int, error) {
	from := r.applied.Load()
	url := fmt.Sprintf("%s/v1/log?from=%d&max=%d", r.primary, from, defaultLogPage)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, transientError{err}
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, transientError{fmt.Errorf("cluster: primary log returned %s: %s", resp.Status, body)}
	}
	var page logResponse
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return 0, transientError{fmt.Errorf("cluster: decoding log page: %w", err)}
	}
	r.target.Store(int64(page.End))
	for i, raw := range page.Records {
		var rec logRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return i, fmt.Errorf("cluster: decoding log record %d: %w", from+int64(i), err)
		}
		if _, err := r.bank.ObserveLabeled(rec.Rows); err != nil {
			return i, fmt.Errorf("cluster: applying log record %d: %w", from+int64(i), err)
		}
		r.applied.Add(1)
	}
	if r.applied.Load() >= r.target.Load() {
		r.caughtUp.Store(true)
	}
	return len(page.Records), nil
}
