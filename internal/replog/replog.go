// Package replog implements the replicated observe log: an append-only,
// CRC-framed file of opaque record payloads with dense monotonic offsets.
// A serving primary appends one record per applied /v1/observe batch and
// replicas replay records in offset order — observe batches are atomic and
// order-insensitive for net counts, so replay is exact and N replicas
// converge bit-identically on the primary's data bank.
//
// File layout:
//
//	header:  magic "PKAL" | u16 version | u64 base offset
//	record:  u32 payload length | u32 CRC-32C(payload) | payload bytes
//
// All integers are little-endian. The base offset is the offset of the
// first record in the file (always 0 today; the field exists so a future
// compaction can truncate the prefix a snapshot already covers). Open scans
// the whole file, verifying every frame, and rejects corruption with named
// errors in the style of internal/snapshot: a torn tail write surfaces as
// ErrTruncated, a damaged payload as ErrChecksum — either way the operator
// knows the log cannot be served from.
package replog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Magic is the 4-byte file signature every log starts with.
const Magic = "PKAL"

// FormatVersion is the current log container version.
const FormatVersion = 1

// headerLen is the fixed file header size: magic, version, base offset.
const headerLen = 4 + 2 + 8

// frameLen is the per-record frame overhead: payload length + CRC.
const frameLen = 4 + 4

// MaxRecordBytes bounds a single record payload; the server bounds observe
// request bodies far below this, so hitting it means a corrupt length
// field, which Open reports as ErrChecksum-class damage.
const MaxRecordBytes = 1 << 30

// Named failures a caller can test with errors.Is, mirroring
// internal/snapshot's error surface.
var (
	ErrBadMagic           = errors.New("replog: not a PKAL log (bad magic)")
	ErrUnsupportedVersion = errors.New("replog: unsupported format version")
	ErrChecksum           = errors.New("replog: record checksum mismatch (corrupt log)")
	ErrTruncated          = errors.New("replog: truncated record (torn write)")
	ErrOutOfRange         = errors.New("replog: offset out of log range")
)

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an open observe log. Appends are serialized by an internal mutex;
// reads go through ReadAt against positions indexed at Open or Append time,
// so any number of tail-serving goroutines can read concurrently with the
// single appender.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	base uint64
	pos  []int64 // pos[i] = file position of record base+i's frame
	end  int64   // file position past the last valid record
}

// Create creates a new empty log at path, failing if the file exists.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replog: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], 0)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("replog: writing header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("replog: %w", err)
	}
	return &Log{f: f, end: headerLen}, nil
}

// Open opens an existing log at path, or creates an empty one when the file
// does not exist. The whole file is scanned and every record frame verified:
// a log that fails verification is refused outright — the named error says
// whether the damage is a torn tail (ErrTruncated) or payload corruption
// (ErrChecksum) — rather than silently serving a prefix.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return Create(path)
	}
	if err != nil {
		return nil, fmt.Errorf("replog: %w", err)
	}
	l, err := open(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// open scans an opened file, building the record position index.
func open(f *os.File) (*Log, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: file shorter than header", ErrTruncated)
		}
		return nil, fmt.Errorf("replog: reading header: %w", err)
	}
	if string(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, reader supports %d",
			ErrUnsupportedVersion, v, FormatVersion)
	}
	l := &Log{f: f, base: binary.LittleEndian.Uint64(hdr[6:14]), end: headerLen}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("replog: %w", err)
	}
	var frame [frameLen]byte
	buf := []byte(nil)
	for l.end < size {
		if size-l.end < frameLen {
			return nil, fmt.Errorf("%w: %d stray bytes at offset %d",
				ErrTruncated, size-l.end, l.base+uint64(len(l.pos)))
		}
		if _, err := f.ReadAt(frame[:], l.end); err != nil {
			return nil, fmt.Errorf("replog: reading frame: %w", err)
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		if n > MaxRecordBytes {
			return nil, fmt.Errorf("%w: implausible record length %d at offset %d",
				ErrChecksum, n, l.base+uint64(len(l.pos)))
		}
		if size-l.end-frameLen < int64(n) {
			return nil, fmt.Errorf("%w: record at offset %d wants %d bytes, %d remain",
				ErrTruncated, l.base+uint64(len(l.pos)), n, size-l.end-frameLen)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := f.ReadAt(buf, l.end+frameLen); err != nil {
			return nil, fmt.Errorf("replog: reading record: %w", err)
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(frame[4:8]) {
			return nil, fmt.Errorf("%w: record at offset %d",
				ErrChecksum, l.base+uint64(len(l.pos)))
		}
		l.pos = append(l.pos, l.end)
		l.end += frameLen + int64(n)
	}
	return l, nil
}

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Base returns the offset of the log's first record.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Next returns the offset the next appended record will receive — equally,
// one past the last stored record.
func (l *Log) Next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.pos))
}

// Append stores one record payload and returns its assigned offset. The
// record is framed, written, and fsynced before the offset is published, so
// a record handed to a tail reader is always durable.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("replog: record of %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameLen:], payload)
	if _, err := l.f.WriteAt(buf, l.end); err != nil {
		return 0, fmt.Errorf("replog: appending record: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("replog: syncing record: %w", err)
	}
	off := l.base + uint64(len(l.pos))
	l.pos = append(l.pos, l.end)
	l.end += int64(len(buf))
	return off, nil
}

// Read returns up to max record payloads starting at offset from, plus the
// offset following the last returned record. Reading exactly at the end of
// the log returns no records and next == from — the poll-again case for a
// caught-up tail reader. Reading before Base or past Next fails with
// ErrOutOfRange. Payloads are freshly allocated and re-verified against
// their stored CRCs; reads are safe concurrently with appends.
func (l *Log) Read(from uint64, max int) ([][]byte, uint64, error) {
	l.mu.Lock()
	base, n := l.base, len(l.pos)
	var positions []int64
	if from >= base && from <= base+uint64(n) {
		take := base + uint64(n) - from
		if take > uint64(max) {
			take = uint64(max)
		}
		start := int(from - base)
		positions = l.pos[start : start+int(take)]
	}
	l.mu.Unlock()
	if from < base || from > base+uint64(n) {
		return nil, 0, fmt.Errorf("%w: offset %d outside [%d,%d]", ErrOutOfRange, from, base, base+uint64(n))
	}
	out := make([][]byte, 0, len(positions))
	var frame [frameLen]byte
	for i, pos := range positions {
		if _, err := l.f.ReadAt(frame[:], pos); err != nil {
			return nil, 0, fmt.Errorf("replog: reading frame: %w", err)
		}
		sz := binary.LittleEndian.Uint32(frame[:4])
		payload := make([]byte, sz)
		if _, err := l.f.ReadAt(payload, pos+frameLen); err != nil {
			return nil, 0, fmt.Errorf("replog: reading record: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:8]) {
			return nil, 0, fmt.Errorf("%w: record at offset %d", ErrChecksum, from+uint64(i))
		}
		out = append(out, payload)
	}
	return out, from + uint64(len(out)), nil
}
