package replog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	off, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return off
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "observe.pkal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Next() != 0 {
		t.Fatalf("fresh log Next = %d, want 0", l.Next())
	}
	want := []string{"alpha", "", "gamma-somewhat-longer-payload", `{"rows":[["a","b"]]}`}
	for i, p := range want {
		if off := mustAppend(t, l, p); off != uint64(i) {
			t.Fatalf("record %d assigned offset %d", i, off)
		}
	}
	recs, next, err := l.Read(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if next != uint64(len(want)) {
		t.Fatalf("next = %d, want %d", next, len(want))
	}
	for i, r := range recs {
		if string(r) != want[i] {
			t.Errorf("record %d = %q, want %q", i, r, want[i])
		}
	}
}

func TestReadPaging(t *testing.T) {
	path := filepath.Join(t.TempDir(), "observe.pkal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprintf("rec-%d", i))
	}
	var got []string
	from := uint64(0)
	for {
		recs, next, err := l.Read(from, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			if next != from {
				t.Fatalf("empty read moved cursor %d -> %d", from, next)
			}
			break
		}
		for _, r := range recs {
			got = append(got, string(r))
		}
		from = next
	}
	if len(got) != 10 || got[0] != "rec-0" || got[9] != "rec-9" {
		t.Fatalf("paged read got %v", got)
	}
	if _, _, err := l.Read(11, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: err = %v, want ErrOutOfRange", err)
	}
}

func TestReopenResumesOffsets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "observe.pkal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "one")
	mustAppend(t, l, "two")
	l.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Next() != 2 {
		t.Fatalf("reopened Next = %d, want 2", l2.Next())
	}
	if off := mustAppend(t, l2, "three"); off != 2 {
		t.Fatalf("append after reopen assigned %d, want 2", off)
	}
	recs, _, err := l2.Read(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[2]) != "three" {
		t.Fatalf("read after reopen: %q", recs)
	}
}

// writeLog builds a well-formed two-record log on disk and returns its
// bytes for corruption tests.
func writeLog(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "observe.pkal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "first-record")
	mustAppend(t, l, "second-record")
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestOpenRejectsCorruptPayload(t *testing.T) {
	path, raw := writeLog(t)
	// Flip one byte inside the first record's payload.
	raw[headerLen+frameLen+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt payload: err = %v, want ErrChecksum", err)
	}
}

func TestOpenRejectsTruncatedTail(t *testing.T) {
	path, raw := writeLog(t)
	for _, cut := range []int{1, frameLen - 1, frameLen + 3} {
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path); !errors.Is(err, ErrTruncated) {
			t.Fatalf("tail cut by %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path, raw := writeLog(t)
	copy(raw, "NOPE")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v, want ErrBadMagic", err)
	}
}

func TestOpenRejectsFutureVersion(t *testing.T) {
	path, raw := writeLog(t)
	raw[4] = 0xee
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("future version: err = %v, want ErrUnsupportedVersion", err)
	}
}

func TestOpenRejectsShortHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "observe.pkal")
	if err := os.WriteFile(path, []byte("PKA"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: err = %v, want ErrTruncated", err)
	}
}

func TestReadDetectsLateCorruption(t *testing.T) {
	// Corruption landing after Open's scan (e.g. disk rot while serving) is
	// caught by Read's re-verification.
	path, _ := writeLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, headerLen+frameLen+1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := l.Read(0, 10); !errors.Is(err, ErrChecksum) {
		t.Fatalf("late corruption: err = %v, want ErrChecksum", err)
	}
}

func TestConcurrentReadersWithAppender(t *testing.T) {
	path := filepath.Join(t.TempDir(), "observe.pkal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 200
	done := make(chan error, 2)
	go func() {
		for i := 0; i < n; i++ {
			if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 1+i%17)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		from := uint64(0)
		for from < n {
			recs, next, err := l.Read(from, 7)
			if err != nil {
				done <- err
				return
			}
			for i, r := range recs {
				want := bytes.Repeat([]byte{byte(from) + byte(i)}, 1+(int(from)+i)%17)
				if !bytes.Equal(r, want) {
					done <- fmt.Errorf("record %d mismatch", from+uint64(i))
					return
				}
			}
			from = next
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
