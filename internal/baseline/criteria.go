package baseline

import (
	"fmt"
	"math"

	"pka/internal/contingency"
	"pka/internal/maxent"
	"pka/internal/stats"
)

// Pick records one constraint promoted by an alternative criterion.
type Pick struct {
	Family contingency.VarSet
	Values []int
	Score  float64 // criterion-specific: |z| for chi-square, ΔG²-lnN for BIC
	Order  int
}

// MaxentModel adapts a fitted maxent model to the JointModel view.
type MaxentModel struct {
	Label string
	M     *maxent.Model
}

// Name implements JointModel.
func (m *MaxentModel) Name() string { return m.Label }

// Joint implements JointModel.
func (m *MaxentModel) Joint() ([]float64, error) { return m.M.Joint() }

// Parameters implements JointModel.
func (m *MaxentModel) Parameters() int { return m.M.NumConstraints() }

// criterion scores a candidate cell; promote reports whether the best score
// clears the acceptance bar.
type criterion struct {
	name    string
	score   func(observed int64, n int64, predicted float64) float64
	promote func(best float64) bool
}

// DiscoverChiSq runs the level-wise selection loop with the classical
// standardized-residual criterion: a cell is promotable when its |z| =
// |obs - Np| / sqrt(Np(1-p)) exceeds the two-sided normal critical value at
// the given significance level alpha (e.g. 0.05 → 1.96).
func DiscoverChiSq(t *contingency.Table, alpha float64, maxOrder int) (*maxent.Model, []Pick, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, nil, fmt.Errorf("baseline: alpha %g outside (0,1)", alpha)
	}
	// Two-sided z critical value via the chi-square(1) inverse: z² ~ χ²(1).
	x, err := stats.ChiSquareCritical(alpha, 1)
	if err != nil {
		return nil, nil, err
	}
	zCrit := math.Sqrt(x)
	c := criterion{
		name: "chisq",
		score: func(obs, n int64, p float64) float64 {
			b := stats.Binomial{N: n, P: p}
			sd := b.SD()
			if sd == 0 {
				return 0
			}
			return math.Abs(b.ZScore(obs))
		},
		promote: func(best float64) bool { return best > zCrit },
	}
	return discoverWith(t, maxOrder, c)
}

// DiscoverBIC runs the same loop with a penalized-likelihood criterion: a
// cell is promotable when its single-cell deviance contribution
// 2N·[q ln(q/p) + (1-q) ln((1-q)/(1-p))] (q = obs/N) exceeds ln N — the BIC
// cost of the one extra parameter the constraint introduces.
func DiscoverBIC(t *contingency.Table, maxOrder int) (*maxent.Model, []Pick, error) {
	c := criterion{
		name: "bic",
		score: func(obs, n int64, p float64) float64 {
			q := float64(obs) / float64(n)
			dev := 0.0
			if q > 0 {
				if p <= 0 {
					return math.Inf(1)
				}
				dev += q * math.Log(q/p)
			}
			if q < 1 {
				if p >= 1 {
					return math.Inf(1)
				}
				dev += (1 - q) * math.Log((1-q)/(1-p))
			}
			return 2*float64(n)*dev - math.Log(float64(n))
		},
		promote: func(best float64) bool { return best > 0 },
	}
	return discoverWith(t, maxOrder, c)
}

// discoverWith is the shared level-wise loop: scan, promote best, refit,
// repeat per order. It mirrors core.Discover's control flow with the MML
// test swapped out, so criterion comparisons isolate exactly that choice.
func discoverWith(t *contingency.Table, maxOrder int, c criterion) (*maxent.Model, []Pick, error) {
	if t.Total() == 0 {
		return nil, nil, fmt.Errorf("baseline: empty table")
	}
	if maxOrder == 0 {
		maxOrder = t.R()
	}
	if maxOrder < 2 || maxOrder > t.R() {
		return nil, nil, fmt.Errorf("baseline: maxOrder %d outside [2,%d]", maxOrder, t.R())
	}
	model, err := maxent.NewModel(t.Names(), t.Cards())
	if err != nil {
		return nil, nil, err
	}
	if err := model.AddFirstOrderConstraints(t); err != nil {
		return nil, nil, err
	}
	solve := maxent.SolveOptions{Tol: math.Max(1e-9, 0.01/float64(t.Total()))}
	if _, err := model.Fit(solve); err != nil {
		return nil, nil, err
	}
	var picks []Pick
	n := t.Total()
	for order := 2; order <= maxOrder; order++ {
		for {
			bestScore := math.Inf(-1)
			var bestFam contingency.VarSet
			var bestValues []int
			var bestObs int64
			for _, fam := range contingency.Combinations(t.R(), order) {
				members := fam.Members()
				values := make([]int, len(members))
				for {
					if !model.HasConstraint(fam, values) {
						obs, err := t.MarginalCount(fam, values)
						if err != nil {
							return nil, nil, err
						}
						pred, err := model.Prob(fam, values)
						if err != nil {
							return nil, nil, err
						}
						if s := c.score(obs, n, pred); s > bestScore {
							bestScore = s
							bestFam = fam
							bestValues = append([]int(nil), values...)
							bestObs = obs
						}
					}
					i := len(members) - 1
					for i >= 0 {
						values[i]++
						if values[i] < t.Card(members[i]) {
							break
						}
						values[i] = 0
						i--
					}
					if i < 0 {
						break
					}
				}
			}
			if math.IsInf(bestScore, -1) || !c.promote(bestScore) {
				break
			}
			con := maxent.Constraint{
				Family: bestFam,
				Values: bestValues,
				Target: float64(bestObs) / float64(n),
			}
			if err := model.AddConstraint(con); err != nil {
				return nil, nil, err
			}
			rep, err := model.Fit(solve)
			if err != nil {
				return nil, nil, fmt.Errorf("baseline: %s refit: %w", c.name, err)
			}
			if !rep.Converged {
				return nil, nil, fmt.Errorf("baseline: %s refit did not converge (residual %g)",
					c.name, rep.Residual)
			}
			picks = append(picks, Pick{
				Family: bestFam,
				Values: bestValues,
				Score:  bestScore,
				Order:  order,
			})
		}
	}
	return model, picks, nil
}
