package baseline

import (
	"math"
	"testing"

	"pka/internal/contingency"
)

func TestDiscoverCriteriaValidation(t *testing.T) {
	empty := contingency.MustNew(nil, []int{2, 2})
	if _, _, err := DiscoverChiSq(empty, 0.05, 2); err == nil {
		t.Error("chi-square on empty table accepted")
	}
	if _, _, err := DiscoverBIC(empty, 2); err == nil {
		t.Error("BIC on empty table accepted")
	}
	tab := memoTable(t)
	if _, _, err := DiscoverChiSq(tab, 1.5, 2); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, _, err := DiscoverBIC(tab, 9); err == nil {
		t.Error("maxOrder above R accepted")
	}
}

func TestDiscoverBICDefaultsMaxOrder(t *testing.T) {
	tab := memoTable(t)
	m, _, err := DiscoverBIC(tab, 0) // 0 means full order
	if err != nil {
		t.Fatal(err)
	}
	if m.NumConstraints() < 7 {
		t.Errorf("constraints = %d", m.NumConstraints())
	}
}

func TestMaxentModelAdapter(t *testing.T) {
	tab := memoTable(t)
	m, picks, err := DiscoverBIC(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	adapter := &MaxentModel{Label: "bic", M: m}
	if adapter.Name() != "bic" {
		t.Error("name wrong")
	}
	joint, err := adapter.Joint()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range joint {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("joint sums to %g", sum)
	}
	if adapter.Parameters() != m.NumConstraints() {
		t.Error("parameter count wrong")
	}
	// Picks carry scores and orders.
	for _, p := range picks {
		if p.Order != 2 {
			t.Errorf("pick at order %d", p.Order)
		}
		if p.Score <= 0 {
			t.Errorf("pick score %g", p.Score)
		}
	}
}

func TestChiSqZeroSDCellsHandled(t *testing.T) {
	// A degenerate attribute (all mass on one value) yields sd = 0 for
	// some candidate cells; the criterion must score them 0, not NaN.
	tab := contingency.MustNew(nil, []int{2, 2})
	tab.Set(60, 0, 0)
	tab.Set(40, 0, 1)
	_, picks, err := DiscoverChiSq(tab, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range picks {
		if math.IsNaN(p.Score) {
			t.Errorf("NaN score in %v", p)
		}
	}
}
