package baseline

import (
	"fmt"

	"pka/internal/contingency"
)

// JointModel is the uniform scoring view over all comparison models.
type JointModel interface {
	// Name identifies the model in bench output.
	Name() string
	// Joint returns the normalized joint distribution, row-major.
	Joint() ([]float64, error)
	// Parameters returns the number of free parameters the model stores —
	// the compactness axis of experiment X6.
	Parameters() int
}

// Empirical is the full relative-frequency joint, optionally smoothed.
type Empirical struct {
	joint  []float64
	params int
}

// NewEmpirical builds the empirical joint with additive (Laplace) smoothing
// alpha >= 0 per cell; alpha 0 keeps raw frequencies.
func NewEmpirical(t *contingency.Table, alpha float64) (*Empirical, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("baseline: negative smoothing %g", alpha)
	}
	n := float64(t.Total())
	cells := t.NumCells()
	denom := n + alpha*float64(cells)
	if denom <= 0 {
		return nil, fmt.Errorf("baseline: empty table and no smoothing")
	}
	joint := make([]float64, cells)
	for i, c := range t.Counts() {
		joint[i] = (float64(c) + alpha) / denom
	}
	return &Empirical{joint: joint, params: cells - 1}, nil
}

// Name implements JointModel.
func (e *Empirical) Name() string { return "empirical" }

// Joint implements JointModel.
func (e *Empirical) Joint() ([]float64, error) {
	return append([]float64(nil), e.joint...), nil
}

// Parameters implements JointModel.
func (e *Empirical) Parameters() int { return e.params }

// Independence is the product-of-marginals model (the memo's Eq. 62).
type Independence struct {
	joint  []float64
	params int
}

// NewIndependence builds it from the table's first-order marginals.
func NewIndependence(t *contingency.Table) (*Independence, error) {
	if t.Total() == 0 {
		return nil, fmt.Errorf("baseline: empty table")
	}
	first, err := t.FirstOrderProbabilities()
	if err != nil {
		return nil, err
	}
	cards := t.Cards()
	joint := make([]float64, t.NumCells())
	cell := make([]int, len(cards))
	for off := range joint {
		rem := off
		for i := len(cards) - 1; i >= 0; i-- {
			cell[i] = rem % cards[i]
			rem /= cards[i]
		}
		p := 1.0
		for i, v := range cell {
			p *= first[i][v]
		}
		joint[off] = p
	}
	params := 0
	for _, c := range cards {
		params += c - 1
	}
	return &Independence{joint: joint, params: params}, nil
}

// Name implements JointModel.
func (i *Independence) Name() string { return "independence" }

// Joint implements JointModel.
func (i *Independence) Joint() ([]float64, error) {
	return append([]float64(nil), i.joint...), nil
}

// Parameters implements JointModel.
func (i *Independence) Parameters() int { return i.params }
