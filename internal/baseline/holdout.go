package baseline

import (
	"fmt"
	"math"

	"pka/internal/contingency"
)

// HeldOutLogLoss returns the average negative log-likelihood (nats per
// sample) of held-out data under a model — the generalization measure for
// experiment X7. Cells the model assigns zero probability while the test
// data occupies them yield +Inf; smoothing is the caller's choice.
func HeldOutLogLoss(m JointModel, test *contingency.Table) (float64, error) {
	if test.Total() == 0 {
		return 0, fmt.Errorf("baseline: empty held-out table")
	}
	joint, err := m.Joint()
	if err != nil {
		return 0, err
	}
	if len(joint) != test.NumCells() {
		return 0, fmt.Errorf("baseline: model has %d cells, held-out table %d",
			len(joint), test.NumCells())
	}
	var loss float64
	for i, c := range test.Counts() {
		if c == 0 {
			continue
		}
		p := joint[i]
		if p <= 0 {
			return math.Inf(1), nil
		}
		loss -= float64(c) * math.Log(p)
	}
	return loss / float64(test.Total()), nil
}

// TrainTestSplit splits a record-count table into train and test tables by
// assigning each sample independently to test with probability testFrac,
// using the supplied uniform variates source for determinism.
//
// Splitting happens at count level: for a cell with n samples the test
// count is binomial(n, testFrac) — equivalent to shuffling the underlying
// records.
func TrainTestSplit(t *contingency.Table, testFrac float64, uniform func() float64) (train, test *contingency.Table, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("baseline: test fraction %g outside (0,1)", testFrac)
	}
	if uniform == nil {
		return nil, nil, fmt.Errorf("baseline: nil uniform source")
	}
	train, err = contingency.New(t.Names(), t.Cards())
	if err != nil {
		return nil, nil, err
	}
	test, err = contingency.New(t.Names(), t.Cards())
	if err != nil {
		return nil, nil, err
	}
	var outer error
	t.EachCell(func(cell []int, count int64) {
		if outer != nil {
			return
		}
		var toTest int64
		for s := int64(0); s < count; s++ {
			if uniform() < testFrac {
				toTest++
			}
		}
		if err := test.Add(toTest, cell...); err != nil {
			outer = err
			return
		}
		if err := train.Add(count-toTest, cell...); err != nil {
			outer = err
		}
	})
	if outer != nil {
		return nil, nil, outer
	}
	return train, test, nil
}
