package baseline

import (
	"math"
	"testing"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/stats"
	"pka/internal/synth"
)

func TestTrainTestSplitConserves(t *testing.T) {
	tab := memoTable(t)
	rng := stats.NewRNG(5)
	train, test, err := TrainTestSplit(tab, 0.3, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if train.Total()+test.Total() != tab.Total() {
		t.Fatalf("split loses samples: %d + %d != %d",
			train.Total(), test.Total(), tab.Total())
	}
	// Each cell conserves too.
	tab.EachCell(func(cell []int, count int64) {
		a, _ := train.At(cell...)
		b, _ := test.At(cell...)
		if a+b != count {
			t.Errorf("cell %v: %d + %d != %d", cell, a, b, count)
		}
	})
	// Roughly 30% lands in test.
	frac := float64(test.Total()) / float64(tab.Total())
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("test fraction %.3f, want ≈0.30", frac)
	}
}

func TestTrainTestSplitValidation(t *testing.T) {
	tab := memoTable(t)
	rng := stats.NewRNG(5)
	if _, _, err := TrainTestSplit(tab, 0, rng.Float64); err == nil {
		t.Error("frac 0 accepted")
	}
	if _, _, err := TrainTestSplit(tab, 1, rng.Float64); err == nil {
		t.Error("frac 1 accepted")
	}
	if _, _, err := TrainTestSplit(tab, 0.5, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestHeldOutLogLossBasics(t *testing.T) {
	tab := memoTable(t)
	emp, err := NewEmpirical(tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Scoring the training data itself: loss equals the empirical entropy.
	loss, err := HeldOutLogLoss(emp, tab)
	if err != nil {
		t.Fatal(err)
	}
	probs, _ := tab.Probabilities()
	if want := stats.Entropy(probs); math.Abs(loss-want) > 1e-12 {
		t.Errorf("self log-loss %.6f != empirical entropy %.6f", loss, want)
	}
	empty := contingency.MustNew(nil, []int{3, 2, 2})
	if _, err := HeldOutLogLoss(emp, empty); err == nil {
		t.Error("empty held-out table accepted")
	}
	wrong := contingency.MustNew(nil, []int{2, 2})
	wrong.Set(5, 0, 0)
	if _, err := HeldOutLogLoss(emp, wrong); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestHeldOutZeroSupportIsInf(t *testing.T) {
	train := contingency.MustNew(nil, []int{2, 2})
	train.Set(10, 0, 0)
	train.Set(10, 1, 1)
	emp, err := NewEmpirical(train, 0)
	if err != nil {
		t.Fatal(err)
	}
	test := contingency.MustNew(nil, []int{2, 2})
	test.Set(1, 0, 1) // unseen cell
	loss, err := HeldOutLogLoss(emp, test)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(loss, 1) {
		t.Errorf("unseen-cell loss = %g, want +Inf", loss)
	}
}

func TestDiscoveredGeneralizesBetterThanEmpirical(t *testing.T) {
	// The X7 claim: on modest samples over a larger space, the discovered
	// model beats the unsmoothed empirical joint on held-out data (the
	// empirical table memorizes sampling noise and zeros).
	truth, err := synth.Telemetry()
	if err != nil {
		t.Fatal(err)
	}
	full, err := truth.SampleTable(stats.NewRNG(71), 4000)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(72)
	train, test, err := TrainTestSplit(full, 0.5, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(train, core.Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	mml := &MaxentModel{Label: "mml", M: res.Model}
	emp, err := NewEmpirical(train, 0)
	if err != nil {
		t.Fatal(err)
	}
	lossMML, err := HeldOutLogLoss(mml, test)
	if err != nil {
		t.Fatal(err)
	}
	lossEmp, err := HeldOutLogLoss(emp, test)
	if err != nil {
		t.Fatal(err)
	}
	// The empirical model typically has unseen-cell zeros at this sample
	// size (81 cells, 2000 train samples) — +Inf loss — and must never
	// beat the discovered model.
	if lossMML >= lossEmp {
		t.Errorf("held-out loss: mml %.4f, empirical %.4f — discovered model should win",
			lossMML, lossEmp)
	}
	if math.IsInf(lossMML, 1) {
		t.Error("discovered model assigned zero to an observed held-out cell")
	}
}
