// Package baseline supplies the comparison models the memo's 1986
// evaluation lacked, anchoring the benches:
//
//   - Empirical: the full relative-frequency joint (optionally Laplace
//     smoothed) — maximal fidelity, maximal parameter count.
//   - Independence: the product of first-order marginals — the model the
//     memo's procedure starts from (Eq. 62).
//   - Chi-square criterion discovery: the same level-wise constraint
//     selection loop, but cells are promoted by the classical per-cell
//     standardized-residual test instead of the MML comparison. This is the
//     pre-MML orthodoxy the memo's criterion replaces (ablation X4).
//   - BIC criterion discovery: promotion by a per-cell deviance-vs-ln(N)
//     score, the modern penalized-likelihood analogue (ablation X4).
//
// All baselines expose the same JointModel view so the bench harness can
// score them uniformly (KL to truth, parameter counts, false positives).
package baseline
