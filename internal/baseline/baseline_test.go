package baseline

import (
	"math"
	"testing"

	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/stats"
	"pka/internal/synth"
)

// memoTable reconstructs the memo's Figure 1 data.
func memoTable(t testing.TB) *contingency.Table {
	t.Helper()
	tab := contingency.MustNew([]string{"A", "B", "C"}, []int{3, 2, 2})
	data := [3][2][2]int64{
		{{130, 110}, {410, 640}},
		{{62, 31}, {580, 460}},
		{{78, 22}, {520, 385}},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				if err := tab.Set(data[i][j][k], i, j, k); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tab
}

func TestEmpiricalMatchesFrequencies(t *testing.T) {
	tab := memoTable(t)
	e, err := NewEmpirical(tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := e.Joint()
	if err != nil {
		t.Fatal(err)
	}
	if got := joint[0]; math.Abs(got-130.0/3428) > 1e-12 {
		t.Errorf("cell 0 = %g, want %g", got, 130.0/3428)
	}
	if e.Parameters() != 11 {
		t.Errorf("parameters = %d, want cells-1 = 11", e.Parameters())
	}
	if e.Name() != "empirical" {
		t.Error("name wrong")
	}
}

func TestEmpiricalSmoothing(t *testing.T) {
	tab := contingency.MustNew(nil, []int{2, 2})
	tab.Set(10, 0, 0) // three empty cells
	e, err := NewEmpirical(tab, 1)
	if err != nil {
		t.Fatal(err)
	}
	joint, _ := e.Joint()
	if joint[3] == 0 {
		t.Error("smoothing left a zero cell")
	}
	sum := 0.0
	for _, p := range joint {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("smoothed joint sums to %g", sum)
	}
	if _, err := NewEmpirical(tab, -1); err == nil {
		t.Error("negative smoothing accepted")
	}
	empty := contingency.MustNew(nil, []int{2})
	if _, err := NewEmpirical(empty, 0); err == nil {
		t.Error("empty unsmoothed table accepted")
	}
}

func TestIndependenceModel(t *testing.T) {
	tab := memoTable(t)
	ind, err := NewIndependence(tab)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := ind.Joint()
	if err != nil {
		t.Fatal(err)
	}
	// Cell (0,0,0): pA1·pB1·pC1.
	want := (1290.0 / 3428) * (433.0 / 3428) * (1780.0 / 3428)
	if math.Abs(joint[0]-want) > 1e-12 {
		t.Errorf("cell 0 = %g, want %g", joint[0], want)
	}
	// Parameters: (3-1)+(2-1)+(2-1) = 4.
	if ind.Parameters() != 4 {
		t.Errorf("parameters = %d, want 4", ind.Parameters())
	}
	empty := contingency.MustNew(nil, []int{2, 2})
	if _, err := NewIndependence(empty); err == nil {
		t.Error("empty table accepted")
	}
}

func TestModelOrderingOnMemoData(t *testing.T) {
	// Fidelity ordering: empirical (exact) <= discovered maxent <=
	// independence, in KL to the empirical distribution.
	tab := memoTable(t)
	emp, _ := tab.Probabilities()

	res, err := core.Discover(tab, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	discovered := &MaxentModel{Label: "mml", M: res.Model}
	ind, _ := NewIndependence(tab)

	dj, err := discovered.Joint()
	if err != nil {
		t.Fatal(err)
	}
	ij, _ := ind.Joint()
	klD, _ := stats.KLDivergence(emp, dj)
	klI, _ := stats.KLDivergence(emp, ij)
	if klD >= klI {
		t.Errorf("discovered KL %.6f not below independence KL %.6f", klD, klI)
	}
	// Compactness ordering: independence < discovered < empirical... the
	// discovered model adds constraints on top of first-order, and the
	// empirical stores every cell.
	e, _ := NewEmpirical(tab, 0)
	if !(ind.Parameters() < discovered.Parameters()) {
		t.Errorf("parameter ordering broken: ind %d, mml %d",
			ind.Parameters(), discovered.Parameters())
	}
	_ = e // 11 params for 12 cells; mml may legitimately reach it on tiny tables
}

func TestDiscoverChiSqFindsMemoStructure(t *testing.T) {
	tab := memoTable(t)
	model, picks, err := DiscoverChiSq(tab, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) == 0 {
		t.Fatal("chi-square found nothing on the memo data")
	}
	// The first pick must be the same headline cell (largest |z| is
	// N^AB_11 at 6.03... actually AC12 at 5.75 vs AB11 6.03 — AB11 wins).
	first := picks[0]
	if first.Family != contingency.NewVarSet(0, 1) || first.Values[0] != 0 || first.Values[1] != 0 {
		t.Errorf("first chi-square pick = %v%v, want N^AB_11", first.Family, first.Values)
	}
	if model.NumConstraints() <= 7 {
		t.Errorf("constraints = %d; chi-square should have promoted cells", model.NumConstraints())
	}
	if _, _, err := DiscoverChiSq(tab, 0, 2); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, _, err := DiscoverChiSq(tab, 0.05, 1); err == nil {
		t.Error("maxOrder=1 accepted")
	}
}

func TestDiscoverBICFindsMemoStructure(t *testing.T) {
	tab := memoTable(t)
	_, picks, err := DiscoverBIC(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) == 0 {
		t.Fatal("BIC found nothing on the memo data")
	}
	first := picks[0]
	if first.Family != contingency.NewVarSet(0, 1) || first.Values[0] != 0 || first.Values[1] != 0 {
		t.Errorf("first BIC pick = %v%v, want N^AB_11", first.Family, first.Values)
	}
}

func TestChiSqMorePermissiveThanMMLOnNullData(t *testing.T) {
	// The ablation claim: on pure-noise data with many cells, the
	// uncorrected chi-square criterion promotes spurious cells at rate
	// ~alpha per cell, while MML stays quiet.
	g, err := synth.IndependentUniform(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := g.SampleTable(stats.NewRNG(17), 50000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(tab, core.Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, chiPicks, err := DiscoverChiSq(tab, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) > len(chiPicks) {
		t.Errorf("MML found %d vs chi-square %d on null data; MML should not exceed",
			len(res.Findings), len(chiPicks))
	}
	if len(res.Findings) > 1 {
		t.Errorf("MML promoted %d cells on null data", len(res.Findings))
	}
}

func TestCriteriaRecoverPlantedStructure(t *testing.T) {
	// All criteria should find the planted coupling at high N; the point
	// of the ablation is their differing false-positive behaviour.
	g, err := synth.Survey(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := g.SampleTable(stats.NewRNG(23), 30000)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []struct {
		name string
		f    func() (int, error)
	}{
		{"chisq", func() (int, error) {
			_, picks, err := DiscoverChiSq(tab, 0.05, 2)
			return len(picks), err
		}},
		{"bic", func() (int, error) {
			_, picks, err := DiscoverBIC(tab, 2)
			return len(picks), err
		}},
	} {
		n, err := run.f()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if n == 0 {
			t.Errorf("%s found nothing despite planted coupling", run.name)
		}
	}
}
