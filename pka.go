// Package pka is a Go implementation of automatic probabilistic knowledge
// acquisition from data, reproducing W. B. Gevarter's NASA TM-88224 /
// ICDE 1987 system: given categorical observation data, it finds the
// statistically significant joint probabilities of attribute combinations
// (maximum entropy + minimum message length), stores them as a compact
// product-form model, and answers any joint, marginal, or conditional
// probability query — including IF-THEN rule extraction for probabilistic
// expert systems.
//
// Quick start:
//
//	schema, _ := pka.NewSchema([]pka.Attribute{
//	    {Name: "SMOKING", Values: []string{"Smoker", "Non smoker"}},
//	    {Name: "CANCER", Values: []string{"Yes", "No"}},
//	})
//	data := pka.NewDataset(schema)
//	// ... data.AppendLabeled(...) per observation ...
//	model, _ := pka.Discover(data, pka.Options{})
//	p, _ := model.Conditional(
//	    []pka.Assignment{{Attr: "CANCER", Value: "Yes"}},
//	    []pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}})
//
// Model and the loaded QueryModel share one query implementation behind
// the Querier interface; Answer/AnswerBatch execute first-class Query
// values against any Querier, and NewServer exposes one over JSON/HTTP
// (the CLI's `pka serve`). See querier.go for that surface.
//
// The packages under internal/ carry the full machinery (contingency
// tables, the maximum-entropy solver, the MML significance test, the
// discovery engine, baselines, and synthetic workload generators); this
// package is the stable public surface.
package pka

import (
	"fmt"
	"io"
	"sync"

	"pka/internal/assoc"
	"pka/internal/contingency"
	"pka/internal/core"
	"pka/internal/crossval"
	"pka/internal/dataset"
	"pka/internal/kb"
	"pka/internal/maxent"
	"pka/internal/mml"
	"pka/internal/query"
	"pka/internal/rules"
	"pka/internal/snapshot"
	"pka/internal/stats"
)

// Attribute is one categorical variable: a name and its ordered values.
type Attribute = dataset.Attribute

// Schema is an ordered list of attributes.
type Schema = dataset.Schema

// Dataset is a schema plus observed records.
type Dataset = dataset.Dataset

// Record is one observation as value indices in schema order.
type Record = dataset.Record

// Table is an R-dimensional contingency table of counts.
type Table = contingency.Table

// Assignment names one attribute value by label, e.g. {“CANCER”, “Yes”}.
type Assignment = kb.Assignment

// Rule is an IF-THEN statement with probability, support, and lift.
type Rule = rules.Rule

// RuleOptions filters extracted rules.
type RuleOptions = rules.Options

// Finding is one discovered significant joint probability.
type Finding = core.Finding

// OtherValue is the catch-all label used to complete attribute ranges.
const OtherValue = dataset.OtherValue

// NewSchema validates attributes and builds a schema.
func NewSchema(attrs []Attribute) (*Schema, error) { return dataset.NewSchema(attrs) }

// NewDataset creates an empty dataset over the schema.
func NewDataset(schema *Schema) *Dataset { return dataset.NewDataset(schema) }

// ReadCSV ingests CSV rows (header = attribute names) into a dataset.
func ReadCSV(r io.Reader, schema *Schema) (*Dataset, error) { return dataset.ReadCSV(r, schema) }

// InferSchema scans CSV data and derives a schema from the distinct values
// seen per column (maxCard 0 = unbounded).
func InferSchema(r io.Reader, maxCard int) (*Schema, error) { return dataset.InferSchema(r, maxCard) }

// MergeRareValues collapses attribute values observed fewer than minCount
// times into the "other" bucket — defensive preprocessing before
// tabulation (see dataset.MergeRareValues).
func MergeRareValues(d *Dataset, minCount int64) (*Dataset, error) {
	return d.MergeRareValues(minCount)
}

// Options tunes discovery. The zero value reproduces the memo's defaults.
type Options struct {
	// MaxOrder caps the attribute-family order scanned (0 = all orders).
	MaxOrder int
	// PriorH2 is the memo's p(H2') prior; 0 means the default 0.5.
	PriorH2 float64
	// MaxConstraints bounds the number of accepted constraints (0 = none).
	MaxConstraints int
	// RecordScans retains every significance scan in Model.Scans() —
	// the data behind the memo's Table 1.
	RecordScans bool
	// IncludeForcedCells restores the memo's literal Eq. 41 behaviour of
	// selecting cells whose value is already determined by known
	// marginals. Off by default; see mml.Config.IncludeForced.
	IncludeForcedCells bool
	// Workers controls discovery parallelism — the per-family significance
	// scans, the pairwise association screen, and the factored solver's
	// per-block fits all fan out over one goroutine pool. 0 uses
	// GOMAXPROCS (the default: use the machine), 1 forces the sequential
	// loops. Results are bit-identical either way; only wall time changes.
	Workers int
	// ScreenPairs gates order >= 2 scans on a pairwise association survey:
	// only families whose attribute pairs all pass the screen are priced.
	// Essential for wide schemas (DiscoverSparse), where the unscreened
	// candidate space is combinatorial; with it off, sparse and dense
	// discovery over the same counts are bit-identical.
	ScreenPairs bool
	// ScreenAlpha is the pairwise G² p-value threshold for ScreenPairs;
	// 0 means the Bonferroni default 0.05 / (number of pairs).
	ScreenAlpha float64
	// ScreenCI refines the pairwise screen with order-1 conditional-
	// independence tests (requires ScreenPairs): pairs whose association a
	// common neighbor fully explains are dropped before families are
	// enumerated. The extra pruning is what keeps the clique universe
	// tractable on very wide (hundreds of attributes) schemas.
	ScreenCI bool
	// ScreenCIAlpha is the p-value above which a conditional test counts
	// as independent (larger prunes more); 0 means 0.05.
	ScreenCIAlpha float64
	// CacheBytes sizes the engine-tier serving cache: cross-request
	// memoization of evidence denominators, conditional-slice sweeps, and
	// MPE completions, keyed by model version so every Update invalidates
	// implicitly. 0 (the default) disables caching; negative means
	// unbounded. The knob is serving configuration, not model state — it
	// does not travel in snapshots (call EnableCache after loading).
	CacheBytes int64
}

// Model is a discovered probabilistic knowledge base. It carries the full
// discovery record (findings, scans, fit) on top of the shared query core,
// and satisfies Querier — the canonical query surface it shares with the
// loaded QueryModel.
//
// Concurrency: every query method (Probability, Conditional, Distribution,
// MostLikely, Lift, MostProbableExplanation, Rules, LogLoss, ...) serves
// from an immutable compiled inference engine snapshot — any number of
// goroutines may query one Model concurrently with no external locking.
// Update is the one mutation: it folds new observations into the retained
// discovery counts, incrementally refits, and atomically swaps in the new
// snapshot; queries in flight keep answering from the engine they started
// with. Updates serialize among themselves but never block queries.
type Model struct {
	queryCore
	// mu serializes Update and guards the discovery record it replaces
	// (result, fit, counts); the query path never takes it.
	mu     sync.RWMutex
	result *core.Result
	fit    FitReport
	// counts is the discovery table, retained for streaming updates; the
	// Model owns it after Discover* returns — callers must not mutate it.
	counts contingency.Counts
	opts   Options
}

// Discover tabulates the dataset and runs the full acquisition procedure.
func Discover(d *Dataset, opts Options) (*Model, error) {
	if d == nil {
		return nil, fmt.Errorf("pka: nil dataset")
	}
	table, err := d.Tabulate()
	if err != nil {
		return nil, err
	}
	return DiscoverTable(table, d.Schema(), opts)
}

// DiscoverTable runs acquisition directly on a contingency table whose axes
// match the schema.
func DiscoverTable(table *Table, schema *Schema, opts Options) (*Model, error) {
	if table == nil || schema == nil {
		return nil, fmt.Errorf("pka: nil table or schema")
	}
	return discoverCounts(table, schema, opts)
}

// DiscoverSparse runs the full acquisition procedure on a sparse table —
// the wide-schema path for data banks whose dense joint space would not
// fit in memory. The returned Model takes ownership of the table (it is
// the data bank streaming updates write into): do not access it — reads
// included — after DiscoverSparse returns if you will call Update. The model is fit and queried through the factored
// (block-decomposed) engine, so the joint space is never materialized; the
// cost scales with the occupied cells, the screened candidate families,
// and the small dense blocks the accepted constraints induce.
//
// For wide schemas set Options.ScreenPairs (and keep MaxOrder low):
// screening bounds the order >= 2 scans to families whose attribute pairs
// associate significantly. With screening off, DiscoverSparse finds
// bit-identical structure to Discover on the densified counts.
func DiscoverSparse(table *SparseTable, schema *Schema, opts Options) (*Model, error) {
	if table == nil || schema == nil {
		return nil, fmt.Errorf("pka: nil table or schema")
	}
	return discoverCounts(table, schema, opts)
}

// coreOptions translates the public discovery options to the engine's.
func coreOptions(opts Options) core.Options {
	coreOpts := core.Options{
		MaxOrder: opts.MaxOrder,
		MML: mml.Config{
			PriorH2:       opts.PriorH2,
			IncludeForced: opts.IncludeForcedCells,
		},
		MaxConstraints: opts.MaxConstraints,
		RecordScans:    opts.RecordScans,
		Workers:        opts.Workers,
		ScreenPairs:    opts.ScreenPairs,
		ScreenAlpha:    opts.ScreenAlpha,
		ScreenCI:       opts.ScreenCI,
		ScreenCIAlpha:  opts.ScreenCIAlpha,
	}
	if coreOpts.MML.PriorH2 == 0 {
		coreOpts.MML.PriorH2 = mml.DefaultConfig().PriorH2
	}
	return coreOpts
}

// discoverCounts is the shared backend-agnostic acquisition driver. The
// returned Model retains the table for streaming updates (Update): it owns
// the counts from here on, and callers must neither mutate NOR read the
// table afterwards — Update writes it without locking, so even read-only
// caller access would race with ingest.
func discoverCounts(table contingency.Counts, schema *Schema, opts Options) (*Model, error) {
	res, err := core.DiscoverCounts(table, coreOptions(opts))
	if err != nil {
		return nil, err
	}
	kbase, err := kb.New(schema, res.Model)
	if err != nil {
		return nil, err
	}
	fit, err := core.GoodnessOfFit(table, res.Model)
	if err != nil {
		return nil, err
	}
	m := &Model{result: res, fit: fit, counts: table, opts: opts}
	m.kbase.Store(kbase)
	if opts.CacheBytes != 0 {
		m.enableCache(opts.CacheBytes)
	}
	return m, nil
}

// UpdateReport says what one streaming Update did: rows folded in,
// constraints retargeted, new constraints discovered, whether a structural
// change forced full rediscovery, and the sample total now served. It is
// also the response body of the server's POST /v1/observe.
type UpdateReport = query.IngestReport

// Update folds new observation rows (value indices in schema order) into
// the model — the paper's continuous-acquisition regime: knowledge is
// re-derived as the data bank grows, here incrementally. The retained
// discovery counts absorb the batch (cached marginal projections updated
// in place), constraints whose marginals moved are retargeted, the solver
// warm-starts from the previous coefficients (re-solving only touched
// blocks on factored engines), families whose marginals moved are
// re-scanned for newly significant cells, and the recompiled engine is
// swapped in atomically — concurrent queries keep serving the previous
// snapshot until the swap, and every query after it sees the new one.
//
// Structural changes the incremental path cannot absorb (an implied-zero
// cell gaining support, a warm refit that will not converge) fall back to
// a full rediscovery on the grown data bank; the report says so. A batch
// whose net effect on every marginal is zero is a no-op: the engine is not
// touched and queries stay bit-identical.
//
// Updates serialize among themselves; queries never block. Models loaded
// with Load cannot Update (no counts travel with a saved file).
func (m *Model) Update(rows []Record) (UpdateReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := UpdateReport{Rows: len(rows)}
	if len(rows) == 0 {
		rep.TotalSamples = m.counts.Total()
		return rep, nil
	}
	cells := make([][]int, len(rows))
	deltas := make([]contingency.CellDelta, len(rows))
	for i, r := range rows {
		cells[i] = append([]int(nil), r...)
		deltas[i] = contingency.CellDelta{Cell: cells[i], Delta: 1}
	}
	if err := m.observeCounts(cells); err != nil {
		// The batch never touched the table: a client-input failure.
		return rep, fmt.Errorf("%w: %w", query.ErrRejectedRows, err)
	}
	out, err := core.Update(m.result, m.counts, deltas, coreOptions(m.opts))
	if err != nil {
		// Roll the counts back so the served model and its data bank stay
		// in step; the batch is rejected as a unit.
		for i := range deltas {
			deltas[i].Delta = -1
		}
		if rbErr := m.applyDeltas(deltas); rbErr != nil {
			return rep, fmt.Errorf("pka: update failed (%w) and rollback failed: %v", err, rbErr)
		}
		return rep, err
	}
	rep.Retargeted = out.Retargeted
	rep.NewConstraints = out.Added
	rep.Rediscovered = out.Rediscovered
	rep.Refit = out.Refit
	rep.Sweeps = out.FitSweeps
	rep.TotalSamples = m.counts.Total()
	// Every applied batch bumps the model version, net-zero batches
	// included: replication replays batches in log order, so version must
	// advance in lockstep with applied records, not with engine swaps.
	if !out.Refit {
		// Net-zero batch: the previous engine still answers bit-identically.
		rep.Version = m.version.Add(1)
		return rep, nil
	}
	kbase, err := kb.New(m.Schema(), out.Result.Model)
	if err != nil {
		return rep, err
	}
	fit, err := core.GoodnessOfFit(m.counts, out.Result.Model)
	if err != nil {
		return rep, err
	}
	m.result = out.Result
	m.fit = fit
	if c := m.cache.Load(); c != nil {
		kbase = kbase.WithCache(c, m.version.Load()+1)
	}
	// Swap before bump: storing the engine first keeps Version() at or
	// below the version of the engine actually serving, so a concurrent
	// reader that snapshots the version and then answers computes from an
	// engine at least that fresh. The serving cache keys entries by that
	// pre-read version; this ordering is what makes a post-observe query
	// at version v unable to surface v-1 bytes (read-your-writes).
	m.kbase.Store(kbase) // in-flight queries finish on the old snapshot
	rep.Version = m.version.Add(1)
	return rep, nil
}

// EnableCache sizes the engine-tier serving cache on a live model (the
// Options.CacheBytes knob, applied after construction — e.g. on a model
// restored with LoadModelSnapshot). capacityBytes == 0 is a no-op;
// negative means unbounded. Safe to call while the model serves queries;
// it serializes with Update.
func (m *Model) EnableCache(capacityBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.enableCache(capacityBytes)
}

// observeCounts routes a validated batch into the retained counts backend.
func (m *Model) observeCounts(cells [][]int) error {
	switch t := m.counts.(type) {
	case *contingency.Sparse:
		return t.ObserveBatch(cells)
	case *contingency.Table:
		return t.ObserveBatch(cells)
	default:
		return fmt.Errorf("pka: counts backend %T cannot ingest batches", m.counts)
	}
}

// applyDeltas applies signed cell deltas to the retained counts backend.
func (m *Model) applyDeltas(deltas []contingency.CellDelta) error {
	switch t := m.counts.(type) {
	case *contingency.Sparse:
		return t.ApplyBatch(deltas)
	case *contingency.Table:
		for _, d := range deltas {
			if err := t.Add(d.Delta, d.Cell...); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("pka: counts backend %T cannot ingest batches", m.counts)
	}
}

// ObserveLabeled is Update with rows of value labels in schema order — the
// wire format of the server's POST /v1/observe. It makes Model satisfy the
// serving layer's streaming-ingest interface.
func (m *Model) ObserveLabeled(rows [][]string) (UpdateReport, error) {
	s := m.Schema()
	conv := make([]Record, len(rows))
	for i, row := range rows {
		if len(row) != s.R() {
			return UpdateReport{Rows: len(rows)}, fmt.Errorf(
				"%w: pka: observe row %d has %d values, schema has %d attributes",
				query.ErrRejectedRows, i, len(row), s.R())
		}
		cell := make(Record, s.R())
		for j, label := range row {
			attr := s.Attr(j)
			vi := attr.ValueIndex(label)
			if vi < 0 {
				return UpdateReport{Rows: len(rows)}, fmt.Errorf(
					"%w: pka: observe row %d: attribute %q has no value %q",
					query.ErrRejectedRows, i, attr.Name, label)
			}
			cell[j] = vi
		}
		conv[i] = cell
	}
	return m.Update(conv)
}

// Findings lists the discovered significant joint probabilities in
// acceptance order (streaming updates append theirs).
func (m *Model) Findings() []Finding {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]Finding(nil), m.result.Findings...)
}

// Scans returns the recorded significance scans (only populated when
// Options.RecordScans was set).
func (m *Model) Scans() []core.Scan {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]core.Scan(nil), m.result.Scans...)
}

// ScoredRule is a Rule with a Wilson confidence interval on its probability.
type ScoredRule = rules.ScoredRule

// RulesWithIntervals attaches 95% Wilson confidence intervals to extracted
// rules given the sample count the knowledge base was discovered from
// (loaded query-only models do not carry it, so it is explicit here).
func RulesWithIntervals(rs []Rule, totalSamples int64) ([]ScoredRule, error) {
	return rules.WithIntervals(rs, totalSamples, 1.96)
}

// RulesWithIntervals extracts rules and attaches 95% Wilson confidence
// intervals based on the discovery sample size.
func (m *Model) RulesWithIntervals(opts RuleOptions) ([]ScoredRule, error) {
	m.mu.RLock()
	kbase, total := m.kb(), m.result.TotalSamples
	m.mu.RUnlock()
	rs, err := rules.FromKnowledgeBase(kbase, opts)
	if err != nil {
		return nil, err
	}
	return rules.WithIntervals(rs, total, 1.96)
}

// Summary renders a digest of the discovery run.
func (m *Model) Summary() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.result.Summary()
}

// Fit returns the goodness-of-fit statistics of the model against the data
// it was discovered from (refreshed by every streaming Update).
func (m *Model) Fit() FitReport {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.fit
}

// Load reads a knowledge base saved with Save. Loaded models answer
// queries but carry no discovery scans or findings — and no counts, so
// they cannot ingest streaming updates.
func Load(r io.Reader) (*QueryModel, error) {
	kbase, err := kb.Load(r)
	if err != nil {
		return nil, err
	}
	q := &QueryModel{}
	q.kbase.Store(kbase)
	return q, nil
}

// SaveSnapshot persists the model as a PKAS binary snapshot, discovery
// counts and options included — the fast-restart format: LoadSnapshot (or
// LoadModelSnapshot, to restore streaming ingest) reconstructs the
// compiled engine directly from the stored coefficients, skipping the
// solve entirely. Use Save for the JSON interchange form.
func (m *Model) SaveSnapshot(w io.Writer) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	kbase := m.kb()
	opts := snapshotOptions(m.opts)
	return snapshot.Write(w, &snapshot.Snapshot{
		Schema:  kbase.Schema(),
		Model:   kbase.Model(),
		Counts:  m.counts,
		Options: &opts,
	})
}

// LoadSnapshot reads a PKAS binary snapshot saved with SaveSnapshot (or
// `pka snapshot`) into a query-only model. Load-to-first-query is pure
// deserialization — no refit, no block summation — and every answer is
// bit-identical to the model that was saved.
func LoadSnapshot(r io.Reader) (*QueryModel, error) {
	kbase, err := kb.LoadBinary(r)
	if err != nil {
		return nil, err
	}
	q := &QueryModel{}
	q.kbase.Store(kbase)
	return q, nil
}

// LoadAny reads a saved knowledge base in either format — PKAS binary
// snapshot or JSON — sniffing the magic bytes to dispatch. It is what
// `pka serve -kb` uses, so one flag serves both formats.
func LoadAny(r io.Reader) (*QueryModel, error) {
	kbase, err := kb.LoadAny(r)
	if err != nil {
		return nil, err
	}
	q := &QueryModel{}
	q.kbase.Store(kbase)
	return q, nil
}

// LoadModelSnapshot restores a full updatable Model from a binary snapshot
// that carries discovery counts (Model.SaveSnapshot writes them;
// query-only snapshots are rejected — use LoadSnapshot for those). The
// restored model resumes streaming ingest: counts, cached sparse
// projections, discovery options, and the solved coefficients all travel,
// so the first Update after a restart warm-starts exactly as it would have
// in the saved process. The discovery narrative (findings, scans) does not
// travel; Findings() starts empty and accumulates from new updates.
func LoadModelSnapshot(r io.Reader) (*Model, error) {
	s, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	if s.Counts == nil {
		return nil, fmt.Errorf("pka: snapshot carries no discovery counts (query-only); use LoadSnapshot")
	}
	kbase, err := kb.New(s.Schema, s.Model)
	if err != nil {
		return nil, err
	}
	fit, err := core.GoodnessOfFit(s.Counts, s.Model)
	if err != nil {
		return nil, err
	}
	var opts Options
	if s.Options != nil {
		opts = discoveryOptions(*s.Options)
	}
	res := &core.Result{Model: s.Model, TotalSamples: s.Counts.Total()}
	m := &Model{result: res, fit: fit, counts: s.Counts, opts: opts}
	m.kbase.Store(kbase)
	return m, nil
}

// snapshotOptions converts public discovery options to the snapshot form.
func snapshotOptions(o Options) snapshot.DiscoveryOptions {
	return snapshot.DiscoveryOptions{
		MaxOrder:           o.MaxOrder,
		PriorH2:            o.PriorH2,
		MaxConstraints:     o.MaxConstraints,
		RecordScans:        o.RecordScans,
		IncludeForcedCells: o.IncludeForcedCells,
		Workers:            o.Workers,
		ScreenPairs:        o.ScreenPairs,
		ScreenAlpha:        o.ScreenAlpha,
		ScreenCI:           o.ScreenCI,
		ScreenCIAlpha:      o.ScreenCIAlpha,
	}
}

// discoveryOptions is the inverse of snapshotOptions.
func discoveryOptions(o snapshot.DiscoveryOptions) Options {
	return Options{
		MaxOrder:           o.MaxOrder,
		PriorH2:            o.PriorH2,
		MaxConstraints:     o.MaxConstraints,
		RecordScans:        o.RecordScans,
		IncludeForcedCells: o.IncludeForcedCells,
		Workers:            o.Workers,
		ScreenPairs:        o.ScreenPairs,
		ScreenAlpha:        o.ScreenAlpha,
		ScreenCI:           o.ScreenCI,
		ScreenCIAlpha:      o.ScreenCIAlpha,
	}
}

// QueryModel is a loaded, query-only knowledge base: the same Querier
// surface as Model (served by the same shared core), minus the discovery
// record a saved file does not carry (findings, scans, goodness of fit).
//
// Concurrency: like Model, a QueryModel is immutable and serves queries
// from a compiled engine snapshot built at Load time; concurrent use from
// any number of goroutines is safe without locking.
type QueryModel struct {
	queryCore
}

// maxent constraint surface for advanced integrations.

// Constraint pins one family cell's probability.
type Constraint = maxent.Constraint

// Binner maps continuous readings to categorical bins, for turning sensor
// streams into attributes (see the telemetry example). Every binner carries
// one extra catch-all bin after the interval bins: NaN readings (sensor
// dropouts, failed parses) land there instead of being conflated with any
// interval, so Bins() is the requested bin count plus one.
type Binner = dataset.Binner

// NewEqualWidthBinner splits [min, max] into equal-width bins (plus the
// NaN catch-all).
func NewEqualWidthBinner(min, max float64, bins int) (*Binner, error) {
	return dataset.NewEqualWidthBinner(min, max, bins)
}

// NewQuantileBinner picks bin edges so the sample spreads evenly (plus the
// NaN catch-all). On skewed samples the requested count is an upper bound:
// quantile edges that repeat or sit at the sample minimum are dropped, so
// heavily tied samples keep fewer interval bins than asked for — always
// size attributes with Binner.Bins(), never with the requested count.
func NewQuantileBinner(sample []float64, bins int) (*Binner, error) {
	return dataset.NewQuantileBinner(sample, bins)
}

// SparseTable is a hash-backed contingency table for schemas whose dense
// joint space would not fit in memory. Project slices out dense tables
// over small attribute subsets; DiscoverSparse runs acquisition on it
// directly. Marginal queries are served from a per-family dense-projection
// cache, so repeated lookups over the same attribute family cost O(1)
// after one pass over the occupied cells; mutation (Observe, ObserveBatch,
// ApplyBatch) maintains the cached projections in place, so the cache
// survives streaming ingest instead of being rebuilt per batch.
type SparseTable = contingency.Sparse

// NewSparseTable creates an empty sparse table over the schema.
//
// Cells are keyed by packing every attribute value into as many 64-bit
// words as Σ ceil(log2(len(attr.Values))) requires; schemas that fit one
// word (e.g. 64 binary attributes) keep the original single-word fast
// path, and wider schemas — hundreds of attributes — spill into
// multi-word keys transparently.
func NewSparseTable(schema *Schema) (*SparseTable, error) {
	return contingency.NewSparse(schema.Names(), schema.Cards())
}

// TabulateCSV streams CSV rows directly into a dense contingency table
// without materializing records — for sample counts that dwarf memory.
func TabulateCSV(r io.Reader, schema *Schema) (*Table, error) {
	return dataset.TabulateCSV(r, schema)
}

// TabulateCSVSparse streams CSV rows into a sparse table, for wide schemas.
func TabulateCSVSparse(r io.Reader, schema *Schema) (*SparseTable, error) {
	return dataset.TabulateCSVSparse(r, schema)
}

// Explanation is a full most-probable world state given evidence.
type Explanation = kb.Explanation

// PairStats summarizes the association between two attributes.
type PairStats = assoc.PairStats

// FitReport carries the classical goodness-of-fit statistics of a
// discovered model against its data.
type FitReport = core.Fit

// ScreenReport summarizes a discovery run's association screen.
type ScreenReport = core.ScreenReport

// Screen returns the association-screen summary of the discovery run, or
// nil when Options.ScreenPairs was off.
func (m *Model) Screen() *ScreenReport {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.result.Screen
}

// Associations computes pairwise association diagnostics (mutual
// information, Cramér's V, G² p-values) over a contingency table, ordered
// strongest first — the memo's "clues for discovering more causal
// explanations".
func Associations(table *Table) ([]PairStats, error) {
	return assoc.Pairwise(table)
}

// OrderScore is the cross-validated loss of one MaxOrder candidate.
type OrderScore = crossval.OrderScore

// SelectMaxOrder picks the level-wise scan depth by k-fold cross-validation:
// it returns per-order held-out losses and the winning order. seed fixes the
// fold assignment.
func SelectMaxOrder(table *Table, maxOrder, folds int, seed int64) ([]OrderScore, int, error) {
	scores, best, err := crossval.SelectMaxOrder(
		table, maxOrder, folds, stats.NewRNG(seed), core.Options{})
	if err != nil {
		return nil, 0, err
	}
	return scores, scores[best].MaxOrder, nil
}

// AssociationsSparse is Associations over a sparse table, projecting each
// pair densely — the screening step for wide schemas.
func AssociationsSparse(table *SparseTable) ([]PairStats, error) {
	return assoc.PairwiseSparse(table)
}

// RenderAssociations formats Associations output with attribute names.
func RenderAssociations(names []string, pairs []PairStats) string {
	return assoc.Render(names, pairs)
}
