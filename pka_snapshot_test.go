package pka_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pka"
	"pka/internal/paperdata"
	"pka/internal/snapshot"
)

// allKindQueries builds one query of every kind from the schema's first
// two attributes, so the round-trip test exercises the full query surface
// without hard-coding attribute names.
func allKindQueries(s *pka.Schema) []pka.Query {
	a0, a1 := s.Attr(0), s.Attr(1)
	t0 := pka.Assignment{Attr: a0.Name, Value: a0.Values[0]}
	t1 := pka.Assignment{Attr: a1.Name, Value: a1.Values[len(a1.Values)-1]}
	return []pka.Query{
		{Kind: pka.QueryProbability, Target: []pka.Assignment{t0}},
		{Kind: pka.QueryProbability, Target: []pka.Assignment{t0, t1}},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{t1}, Given: []pka.Assignment{t0}},
		{Kind: pka.QueryDistribution, Attr: a1.Name, Given: []pka.Assignment{t0}},
		{Kind: pka.QueryMostLikely, Attr: a0.Name, Given: []pka.Assignment{t1}},
		{Kind: pka.QueryLift, Target: []pka.Assignment{t1}, Given: []pka.Assignment{t0}},
		{Kind: pka.QueryMPE, Given: []pka.Assignment{t0}},
	}
}

// denseModel is the paper's 3-attribute memo model: small enough for the
// dense joint engine, the counterpart to the factored wide model.
func denseModel(t *testing.T) *pka.Model {
	t.Helper()
	m, err := pka.Discover(paperdata.Records(), pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func snapshotBytes(t *testing.T, m *pka.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeAnswer(t *testing.T, q pka.Querier, qu pka.Query) []byte {
	t.Helper()
	res, err := pka.Answer(q, qu)
	if err != nil {
		t.Fatalf("query %v: %v", qu, err)
	}
	var buf bytes.Buffer
	if err := pka.EncodeQueryResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripBitIdentical is the snapshot acceptance gate: a
// model restored from a binary snapshot must answer every query kind with
// wire bytes identical to the live model it was saved from, in both the
// dense-joint and the factored (wide, per-block) engine modes.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		model func(testing.TB) *pka.Model
	}{
		{"dense", func(tb testing.TB) *pka.Model { return denseModel(tb.(*testing.T)) }},
		{"factored", wideColdStartModel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live := tc.model(t)
			data := snapshotBytes(t, live)
			restored, err := pka.LoadSnapshot(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if !restored.Schema().Equal(live.Schema()) {
				t.Fatal("restored schema differs from live schema")
			}
			for _, qu := range allKindQueries(live.Schema()) {
				want := encodeAnswer(t, live, qu)
				got := encodeAnswer(t, restored, qu)
				if !bytes.Equal(want, got) {
					t.Errorf("%s %v: live %s != restored %s", qu.Kind, qu, want, got)
				}
			}
		})
	}
}

// TestSnapshotSaveLoadSaveIdentical pins the canonical encoding: saving a
// loaded snapshot reproduces the input byte for byte, for both the full
// (counts-carrying) form and the query-only form.
func TestSnapshotSaveLoadSaveIdentical(t *testing.T) {
	models := []struct {
		name  string
		model func(testing.TB) *pka.Model
	}{
		{"dense", func(tb testing.TB) *pka.Model { return denseModel(tb.(*testing.T)) }},
		{"factored", wideColdStartModel},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			first := snapshotBytes(t, tc.model(t))

			// Full snapshot: counts and options travel, so a restored
			// updatable model re-saves identically.
			m2, err := pka.LoadModelSnapshot(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			second := snapshotBytes(t, m2)
			if !bytes.Equal(first, second) {
				t.Errorf("full snapshot not byte-stable: %d bytes then %d bytes", len(first), len(second))
			}

			// Query-only snapshot: a QueryModel saves without counts; that
			// form must be byte-stable under its own load/save cycle.
			qm, err := pka.LoadSnapshot(bytes.NewReader(first))
			if err != nil {
				t.Fatal(err)
			}
			var q1 bytes.Buffer
			if err := qm.SaveSnapshot(&q1); err != nil {
				t.Fatal(err)
			}
			qm2, err := pka.LoadSnapshot(bytes.NewReader(q1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var q2 bytes.Buffer
			if err := qm2.SaveSnapshot(&q2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(q1.Bytes(), q2.Bytes()) {
				t.Errorf("query-only snapshot not byte-stable: %d bytes then %d bytes", q1.Len(), q2.Len())
			}
		})
	}
}

// TestSnapshotCorruptInputs drives every corruption class through the
// loader and checks the named error, so callers can dispatch with
// errors.Is instead of string matching. The version-skew case relies on
// header-first validation: a future version is rejected before the
// payload (or its checksum) is ever read.
func TestSnapshotCorruptInputs(t *testing.T) {
	valid := snapshotBytes(t, denseModel(t))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty", func([]byte) []byte { return nil }, snapshot.ErrBadMagic},
		{"short prefix", func([]byte) []byte { return []byte("PK") }, snapshot.ErrBadMagic},
		{"json not snapshot", func([]byte) []byte { return []byte(`{"version":1}`) }, snapshot.ErrBadMagic},
		{"wrong magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[3] = 'Z'
			return c
		}, snapshot.ErrBadMagic},
		{"header cut short", func(b []byte) []byte { return append([]byte(nil), b[:9]...) }, snapshot.ErrTruncated},
		{"payload cut short", func(b []byte) []byte { return append([]byte(nil), b[:len(b)/2]...) }, snapshot.ErrTruncated},
		{"checksum cut off", func(b []byte) []byte { return append([]byte(nil), b[:len(b)-2]...) }, snapshot.ErrTruncated},
		{"trailing garbage", func(b []byte) []byte {
			return append(append([]byte(nil), b...), 0x00)
		}, snapshot.ErrTruncated},
		{"future version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = snapshot.FormatVersion + 1 // version uint16 at offset 4
			return c
		}, snapshot.ErrUnsupportedVersion},
		{"version zero", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 0
			return c
		}, snapshot.ErrUnsupportedVersion},
		{"payload bit flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[20] ^= 0xFF
			return c
		}, snapshot.ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := pka.LoadSnapshot(bytes.NewReader(tc.mutate(valid)))
			if !errors.Is(err, tc.want) {
				t.Errorf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// TestSnapshotVersionSkewWide pins the cross-version failure mode the
// header version byte exists to prevent: a multi-word (wide-schema) v2
// payload relabeled as version 1 must be rejected by the v1 decode rules,
// not silently misread — v1 never produced multi-word keys or member-list
// families, so the relabeled payload cannot validate.
func TestSnapshotVersionSkewWide(t *testing.T) {
	attrs := make([]pka.Attribute, 70)
	for i := range attrs {
		attrs[i] = pka.Attribute{Name: fmt.Sprintf("W%02d", i), Values: []string{"0", "1"}}
	}
	schema, err := pka.NewSchema(attrs)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := pka.NewSparseTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	cell := make([]int, len(attrs))
	for n := 0; n < 300; n++ {
		for i := range cell {
			cell[i] = rng.Intn(2)
		}
		if rng.Float64() < 0.8 {
			cell[1] = cell[0]
		}
		if err := tab.Observe(cell...); err != nil {
			t.Fatal(err)
		}
	}
	m, err := pka.DiscoverSparse(tab, schema, pka.Options{MaxOrder: 2, ScreenPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	data := snapshotBytes(t, m)
	if data[4] != snapshot.FormatVersion {
		t.Fatalf("fresh wide snapshot declares version %d, want %d", data[4], snapshot.FormatVersion)
	}
	skewed := append([]byte(nil), data...)
	skewed[4] = 1
	if _, err := pka.LoadSnapshot(bytes.NewReader(skewed)); err == nil {
		t.Fatal("v2 wide payload relabeled as v1 loaded without error")
	}
}

// TestLoadModelSnapshotResume checks the updatable round trip: a model
// restored from a full snapshot keeps its counts and options, so
// streaming updates continue where the saved model left off. A query-only
// snapshot must be rejected with a pointer at LoadSnapshot.
func TestLoadModelSnapshotResume(t *testing.T) {
	m := denseModel(t)
	data := snapshotBytes(t, m)
	m2, err := pka.LoadModelSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m2.Update([]pka.Record{{0, 0, 0}, {1, 1, 1}, {2, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 3 {
		t.Errorf("update saw %d rows, want 3", rep.Rows)
	}
	if _, err := pka.Answer(m2, allKindQueries(m2.Schema())[0]); err != nil {
		t.Fatal(err)
	}

	qm, err := pka.LoadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var queryOnly bytes.Buffer
	if err := qm.SaveSnapshot(&queryOnly); err != nil {
		t.Fatal(err)
	}
	if _, err := pka.LoadModelSnapshot(bytes.NewReader(queryOnly.Bytes())); err == nil {
		t.Error("LoadModelSnapshot accepted a query-only snapshot")
	}
}

// TestLoadAnyDispatch checks the magic-byte sniffing: both on-disk
// formats load through the one entry point, and garbage fails.
func TestLoadAnyDispatch(t *testing.T) {
	m := denseModel(t)
	var jsonBuf bytes.Buffer
	if err := m.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	snapBuf := snapshotBytes(t, m)

	fromJSON, err := pka.LoadAny(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatalf("LoadAny(json): %v", err)
	}
	fromSnap, err := pka.LoadAny(bytes.NewReader(snapBuf))
	if err != nil {
		t.Fatalf("LoadAny(snapshot): %v", err)
	}
	qu := allKindQueries(m.Schema())[0]
	if a, b := encodeAnswer(t, fromJSON, qu), encodeAnswer(t, fromSnap, qu); !bytes.Equal(a, b) {
		t.Errorf("LoadAny answers differ across formats: %s vs %s", a, b)
	}
	if _, err := pka.LoadAny(bytes.NewReader([]byte("neither format"))); err == nil {
		t.Error("LoadAny accepted garbage")
	}
}

// FuzzLoadSnapshot asserts the binary loader never panics: any byte
// mutation must surface as an error (or a structurally valid snapshot),
// never a crash.
func FuzzLoadSnapshot(f *testing.F) {
	var valid []byte
	{
		m, err := pka.Discover(paperdata.Records(), pka.Options{})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.SaveSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		valid = buf.Bytes()
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PKAS"))
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x55
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		qm, err := pka.LoadSnapshot(bytes.NewReader(data))
		if err == nil && qm.Schema().R() == 0 {
			t.Error("loaded snapshot with empty schema")
		}
	})
}
