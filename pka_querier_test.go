package pka_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pka"
	"pka/internal/paperdata"
)

// loadedModel saves the discovered model and loads it back, the deployment
// path every parity test compares against.
func loadedModel(t testing.TB, m *pka.Model) *pka.QueryModel {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := pka.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestModelQueryModelParity: the whole Querier surface (plus the metadata
// and validation accessors QueryModel used to lack — Lift, LogLossSparse,
// Info, NumConstraints, Entropy) answers identically through Model and
// through a save/load round trip, because both run the same shared core.
func TestModelQueryModelParity(t *testing.T) {
	m, err := pka.Discover(paperdata.Records(), pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := loadedModel(t, m)
	smoker := pka.Assignment{Attr: "SMOKING", Value: "Smoker"}
	cancer := pka.Assignment{Attr: "CANCER", Value: "Yes"}

	mp, err1 := m.Probability(smoker, cancer)
	qp, err2 := q.Probability(smoker, cancer)
	if err1 != nil || err2 != nil || mp != qp {
		t.Errorf("Probability parity: %x vs %x (%v, %v)", mp, qp, err1, err2)
	}
	ml, err1 := m.Lift(cancer, smoker)
	ql, err2 := q.Lift(cancer, smoker)
	if err1 != nil || err2 != nil || ml != ql {
		t.Errorf("Lift parity: %x vs %x (%v, %v)", ml, ql, err1, err2)
	}
	table, err := paperdata.Records().Tabulate()
	if err != nil {
		t.Fatal(err)
	}
	mll, err1 := m.LogLoss(table)
	qll, err2 := q.LogLoss(table)
	if err1 != nil || err2 != nil || mll != qll {
		t.Errorf("LogLoss parity: %x vs %x (%v, %v)", mll, qll, err1, err2)
	}
	if mi, qi := m.Info(), q.Info(); mi != qi {
		t.Errorf("Info parity: %+v vs %+v", mi, qi)
	}
	if m.NumConstraints() != q.NumConstraints() {
		t.Errorf("NumConstraints parity: %d vs %d", m.NumConstraints(), q.NumConstraints())
	}
	me, err1 := m.Entropy()
	qe, err2 := q.Entropy()
	if err1 != nil || err2 != nil || me != qe {
		t.Errorf("Entropy parity: %x vs %x (%v, %v)", me, qe, err1, err2)
	}
	if m.Explain() != q.Explain() {
		t.Error("Explain drifted between Model and QueryModel")
	}
	// Model keeps the discovery digest; QueryModel reports the stored
	// metadata — both must answer Summary.
	if !strings.Contains(m.Summary(), "N=") {
		t.Errorf("Model.Summary lost the discovery digest: %q", m.Summary())
	}
	if s := q.Summary(); !strings.Contains(s, "constraints") {
		t.Errorf("QueryModel.Summary = %q", s)
	}
	// A QueryModel can re-save; the file must load back identically.
	q2 := loadedModel(t, m)
	var first, second bytes.Buffer
	if err := q.Save(&first); err != nil {
		t.Fatal(err)
	}
	if err := q2.Save(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("QueryModel.Save not stable")
	}
}

// mixedQueries is a batch with shared evidence groups, repeated queries,
// every kind, and one failing entry.
func mixedQueries() []pka.Query {
	smoker := []pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}}
	both := []pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}, {Attr: "FAMILY HISTORY", Value: "Yes"}}
	return []pka.Query{
		{Kind: pka.QueryProbability, Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}}},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}}, Given: smoker},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "No"}}, Given: smoker},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}}, Given: both},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "FAMILY HISTORY", Value: "Yes"}}, Given: smoker},
		{Kind: pka.QueryDistribution, Attr: "CANCER", Given: smoker},
		{Kind: pka.QueryMostLikely, Attr: "CANCER", Given: both},
		{Kind: pka.QueryLift, Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}}, Given: smoker},
		{Kind: pka.QueryMPE, Given: smoker},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "Maybe"}}, Given: smoker},
		{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: "Yes"}}, Given: smoker},
	}
}

// TestAnswerBatchBitIdenticalToAnswer: batched execution returns the same
// bits as one Answer per query, for both Model and QueryModel.
func TestAnswerBatchBitIdenticalToAnswer(t *testing.T) {
	m, err := pka.Discover(paperdata.Records(), pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := mixedQueries()
	for name, querier := range map[string]pka.Querier{"model": m, "querymodel": loadedModel(t, m)} {
		batch, err := pka.AnswerBatch(querier, queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, qu := range queries {
			want, werr := pka.Answer(querier, qu)
			if werr != nil {
				if batch[i].Error != werr.Error() {
					t.Errorf("%s: query %d error %q, want %q", name, i, batch[i].Error, werr)
				}
				continue
			}
			got := batch[i]
			if got.Probability != want.Probability || got.Lift != want.Lift ||
				got.Value != want.Value || got.Error != "" {
				t.Errorf("%s: query %d = %+v, want %+v", name, i, got, want)
			}
			for v, p := range want.Distribution {
				if got.Distribution[v] != p {
					t.Errorf("%s: query %d dist[%s] = %x, want %x", name, i, v, got.Distribution[v], p)
				}
			}
			for j := range want.Assignments {
				if got.Assignments[j] != want.Assignments[j] {
					t.Errorf("%s: query %d assignment %d = %v, want %v", name, i, j, got.Assignments[j], want.Assignments[j])
				}
			}
		}
	}
}

// TestServedModelConcurrentMixedQueries is the serving-layer race hammer:
// one model behind pka.NewServer, hit by many goroutines mixing HTTP
// single queries, HTTP batches, and direct Answer/AnswerBatch calls (run
// with -race). Answers must stay deterministic throughout.
func TestServedModelConcurrentMixedQueries(t *testing.T) {
	m, err := pka.Discover(paperdata.Records(), pka.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(pka.NewServer(m))
	defer srv.Close()

	queries := mixedQueries()
	want, err := pka.AnswerBatch(m, queries)
	if err != nil {
		t.Fatal(err)
	}
	single := queries[1]
	wantSingle, err := pka.Answer(m, single)
	if err != nil {
		t.Fatal(err)
	}
	singleBody, err := json.Marshal(single)
	if err != nil {
		t.Fatal(err)
	}
	batchBody, err := json.Marshal(struct {
		Queries []pka.Query `json:"queries"`
	}{queries})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	fail := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch (g + i) % 4 {
				case 0: // HTTP single query
					resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(singleBody))
					if err != nil {
						fail(err.Error())
						return
					}
					var res pka.QueryResult
					err = json.NewDecoder(resp.Body).Decode(&res)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK || res.Probability != wantSingle.Probability {
						fail(fmt.Sprintf("HTTP single diverged: %d %+v (%v)", resp.StatusCode, res, err))
						return
					}
				case 1: // HTTP batch
					resp, err := http.Post(srv.URL+"/v1/query/batch", "application/json", bytes.NewReader(batchBody))
					if err != nil {
						fail(err.Error())
						return
					}
					var res struct {
						Results []pka.QueryResult `json:"results"`
					}
					err = json.NewDecoder(resp.Body).Decode(&res)
					resp.Body.Close()
					if err != nil || len(res.Results) != len(want) {
						fail(fmt.Sprintf("HTTP batch diverged: %v (%v)", res, err))
						return
					}
					for j := range want {
						if res.Results[j].Probability != want[j].Probability || res.Results[j].Error != want[j].Error {
							fail(fmt.Sprintf("HTTP batch slot %d diverged", j))
							return
						}
					}
				case 2: // direct batch
					got, err := pka.AnswerBatch(m, queries)
					if err != nil {
						fail(err.Error())
						return
					}
					for j := range want {
						if got[j].Probability != want[j].Probability {
							fail(fmt.Sprintf("direct batch slot %d diverged", j))
							return
						}
					}
				default: // direct single
					got, err := pka.Answer(m, single)
					if err != nil || got.Probability != wantSingle.Probability {
						fail("direct single diverged")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// BenchmarkAnswerSequential and BenchmarkAnswerBatch compare one
// AnswerBatch against N independent Answer calls over a workload of 32
// single-target conditionals sharing two evidence sets — the regime the
// batch path exists for.
func benchQueries() []pka.Query {
	smoker := []pka.Assignment{{Attr: "SMOKING", Value: "Smoker"}}
	both := []pka.Assignment{{Attr: "SMOKING", Value: "Non smoker"}, {Attr: "FAMILY HISTORY", Value: "Yes"}}
	out := make([]pka.Query, 0, 32)
	for i := 0; i < 16; i++ {
		v := []string{"Yes", "No"}[i%2]
		out = append(out,
			pka.Query{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: v}}, Given: smoker},
			pka.Query{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "CANCER", Value: v}}, Given: both},
		)
	}
	return out
}

func benchModel(b *testing.B) *pka.Model {
	b.Helper()
	m, err := pka.Discover(paperdata.Records(), pka.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkAnswerSequential(b *testing.B) {
	m := benchModel(b)
	queries := benchQueries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qu := range queries {
			if _, err := pka.Answer(m, qu); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAnswerBatch(b *testing.B) {
	m := benchModel(b)
	queries := benchQueries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pka.AnswerBatch(m, queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswerBatchParallel serves one batch of 128 queries spread over
// 16 distinct evidence groups (conditionals, distributions, and MPE
// completions per group) at several worker counts — the server's
// /v1/query/batch hot path. Results are bit-identical across counts; the
// sub-benchmarks differ only in wall time.
func BenchmarkAnswerBatchParallel(b *testing.B) {
	schema, err := pka.NewSchema([]pka.Attribute{
		{Name: "A0", Values: []string{"a", "b", "c"}},
		{Name: "A1", Values: []string{"a", "b", "c"}},
		{Name: "A2", Values: []string{"a", "b", "c"}},
		{Name: "A3", Values: []string{"a", "b", "c"}},
		{Name: "A4", Values: []string{"a", "b", "c"}},
		{Name: "A5", Values: []string{"a", "b", "c"}},
		{Name: "A6", Values: []string{"a", "b", "c"}},
		{Name: "A7", Values: []string{"a", "b", "c"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	labels := []string{"a", "b", "c"}
	data := pka.NewDataset(schema)
	rng := rand.New(rand.NewSource(17))
	row := make([]string, 8)
	for n := 0; n < 6000; n++ {
		for i := range row {
			row[i] = labels[rng.Intn(3)]
		}
		if rng.Float64() < 0.6 {
			row[1] = row[0]
		}
		if rng.Float64() < 0.5 {
			row[5] = row[4]
		}
		if err := data.AppendLabeled(row); err != nil {
			b.Fatal(err)
		}
	}
	m, err := pka.Discover(data, pka.Options{MaxOrder: 2})
	if err != nil {
		b.Fatal(err)
	}
	var queries []pka.Query
	// Base-3 digits of g over three evidence attributes: 27 possible
	// combos, so g = 0..15 yields 16 genuinely distinct evidence groups.
	for g := 0; g < 16; g++ {
		given := []pka.Assignment{
			{Attr: "A0", Value: labels[g%3]},
			{Attr: "A4", Value: labels[(g/3)%3]},
			{Attr: "A6", Value: labels[(g/9)%3]},
		}
		for v := 0; v < 3; v++ {
			queries = append(queries,
				pka.Query{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "A1", Value: labels[v]}}, Given: given},
				pka.Query{Kind: pka.QueryConditional, Target: []pka.Assignment{{Attr: "A5", Value: labels[v]}}, Given: given},
			)
		}
		queries = append(queries,
			pka.Query{Kind: pka.QueryDistribution, Attr: "A2", Given: given},
			pka.Query{Kind: pka.QueryMPE, Given: given},
		)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := pka.AnswerBatchWorkers(m, queries, workers)
				if err != nil {
					b.Fatal(err)
				}
				for qi, r := range results {
					if r.Error != "" {
						b.Fatalf("query %d failed: %s", qi, r.Error)
					}
				}
			}
		})
	}
}
