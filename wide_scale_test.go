//go:build !race

package pka_test

// Full-scale wide end-to-end workload: 520 attributes, the ISSUE's
// 500+-attribute proof. The race-instrumented build runs a smaller
// instance (see wide_scale_race_test.go) because the O(pairs × occupied)
// screen is ~15x slower under the detector; the representation under test
// is identical (multi-word keys either way).
const (
	wideE2EPairs          = 260 // 520 attributes
	wideE2ERows           = 1500
	wideE2EMaxConstraints = 40
	wideE2EMinRecovered   = 10
	wideE2ECheckPairs     = 5
)
