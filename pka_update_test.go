package pka

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// streamSchema is a 4-attribute schema for the streaming tests.
func streamSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "A", Values: []string{"a0", "a1", "a2"}},
		{Name: "B", Values: []string{"b0", "b1"}},
		{Name: "C", Values: []string{"c0", "c1"}},
		{Name: "D", Values: []string{"d0", "d1", "d2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// streamRows draws correlated rows (B tracks A, D tracks C) so discovery
// finds order-2 structure.
func streamRows(rng *rand.Rand, n int) []Record {
	rows := make([]Record, n)
	for i := range rows {
		cell := make(Record, 4)
		cell[0] = rng.Intn(3)
		cell[1] = cell[0] % 2
		if rng.Float64() < 0.3 {
			cell[1] = rng.Intn(2)
		}
		cell[2] = rng.Intn(2)
		cell[3] = cell[2]
		if rng.Float64() < 0.25 {
			cell[3] = rng.Intn(3)
		}
		rows[i] = cell
	}
	return rows
}

func sparseOf(t testing.TB, schema *Schema, rows []Record) *SparseTable {
	t.Helper()
	tab, err := NewSparseTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([][]int, len(rows))
	for i, r := range rows {
		cells[i] = r
	}
	if err := tab.ObserveBatch(cells); err != nil {
		t.Fatal(err)
	}
	return tab
}

// allQueries enumerates a representative query set: every single-attribute
// probability and every pairwise conditional over the first values.
func allQueries(t testing.TB, q Querier) []float64 {
	t.Helper()
	s := q.Schema()
	var out []float64
	for i := 0; i < s.R(); i++ {
		a := s.Attr(i)
		for _, v := range a.Values {
			p, err := q.Probability(Assignment{Attr: a.Name, Value: v})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
		}
		for j := 0; j < s.R(); j++ {
			if i == j {
				continue
			}
			b := s.Attr(j)
			c, err := q.Conditional(
				[]Assignment{{Attr: a.Name, Value: a.Values[0]}},
				[]Assignment{{Attr: b.Name, Value: b.Values[0]}})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, c)
		}
	}
	return out
}

// TestModelUpdateMatchesScratchDiscovery is the issue's property test (b):
// K random batches folded in through Model.Update answer every query
// within tolerance of a scratch DiscoverSparse over the union of the data.
func TestModelUpdateMatchesScratchDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	schema := streamSchema(t)
	base := streamRows(rng, 4000)
	opts := Options{MaxOrder: 2}
	model, err := DiscoverSparse(sparseOf(t, schema, base), schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	all := append([]Record(nil), base...)

	for batch := 0; batch < 5; batch++ {
		delta := streamRows(rng, 40)
		all = append(all, delta...)
		rep, err := model.Update(delta)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if rep.Rows != len(delta) || rep.TotalSamples != int64(len(all)) {
			t.Fatalf("batch %d: report %+v, want %d rows and total %d",
				batch, rep, len(delta), len(all))
		}

		scratch, err := DiscoverSparse(sparseOf(t, schema, all), schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		upd := allQueries(t, model)
		ref := allQueries(t, scratch)
		for i := range upd {
			if math.Abs(upd[i]-ref[i]) > 1e-3 {
				t.Fatalf("batch %d: query %d: update %.8f vs scratch %.8f",
					batch, i, upd[i], ref[i])
			}
		}
	}
}

// TestModelUpdateNoOpBitIdentical: an empty batch leaves the engine
// untouched, so every query answer stays bit-identical — the unchanged-
// constraint-set half of the equivalence contract.
func TestModelUpdateNoOpBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := streamSchema(t)
	model, err := DiscoverSparse(sparseOf(t, schema, streamRows(rng, 2000)), schema, Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := allQueries(t, model)
	kbBefore := model.KnowledgeBase()
	rep, err := model.Update(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refit {
		t.Error("empty batch reported a refit")
	}
	if model.KnowledgeBase() != kbBefore {
		t.Error("empty batch swapped the engine")
	}
	after := allQueries(t, model)
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("query %d moved on a no-op update: %g -> %g", i, before[i], after[i])
		}
	}
}

// TestModelUpdateDense: the dense-table discovery path ingests updates too.
func TestModelUpdateDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	schema := streamSchema(t)
	data := NewDataset(schema)
	for _, r := range streamRows(rng, 3000) {
		if err := data.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	model, err := Discover(data, Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Update(streamRows(rng, 60))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Refit {
		t.Error("dense update did not refit")
	}
	if rep.TotalSamples != 3060 {
		t.Errorf("total after dense update = %d, want 3060", rep.TotalSamples)
	}
	if _, err := model.Probability(Assignment{Attr: "A", Value: "a0"}); err != nil {
		t.Fatal(err)
	}
}

// TestModelUpdateRejectsBadRows: a bad row rejects the whole batch and the
// model keeps answering exactly as before (counts rolled back, engine
// untouched).
func TestModelUpdateRejectsBadRows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	schema := streamSchema(t)
	model, err := DiscoverSparse(sparseOf(t, schema, streamRows(rng, 1500)), schema, Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := allQueries(t, model)
	if _, err := model.Update([]Record{{0, 0, 0, 9}}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := model.Update([]Record{{0, 0}}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := model.ObserveLabeled([][]string{{"a0", "b0", "c0", "nope"}}); err == nil {
		t.Error("unknown label accepted")
	}
	after := allQueries(t, model)
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("query %d moved after rejected batches: %g -> %g", i, before[i], after[i])
		}
	}
}

// TestModelUpdateConcurrentQueries is the -race hammer at the library
// level: queries from many goroutines while updates stream in.
func TestModelUpdateConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	schema := streamSchema(t)
	model, err := DiscoverSparse(sparseOf(t, schema, streamRows(rng, 3000)), schema, Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := model.Conditional(
					[]Assignment{{Attr: "B", Value: "b1"}},
					[]Assignment{{Attr: "A", Value: "a1"}}); err != nil {
					t.Error(err)
					return
				}
				if _, err := model.Rules(RuleOptions{}); err != nil {
					t.Error(err)
					return
				}
				_ = model.Findings()
			}
		}()
	}
	updRng := rand.New(rand.NewSource(32))
	for i := 0; i < 8; i++ {
		if _, err := model.Update(streamRows(updRng, 25)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestServerObserveQueryRaceHammer mixes POST /v1/observe traffic with
// concurrent /v1/query and /v1/rules requests against one served model —
// the batch-ingest + concurrent-query regime, under -race.
func TestServerObserveQueryRaceHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	schema := streamSchema(t)
	model, err := DiscoverSparse(sparseOf(t, schema, streamRows(rng, 2500)), schema, Options{MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(model))
	defer srv.Close()

	queryBody := `{"kind":"conditional","target":[{"attr":"B","value":"b1"}],"given":[{"attr":"A","value":"a1"}]}`
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(queryBody))
				if err != nil {
					t.Error(err)
					return
				}
				var res QueryResult
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || res.Error != "" {
					t.Errorf("query: %v %d %+v", err, resp.StatusCode, res)
					return
				}
				if res.Probability <= 0 || res.Probability > 1 {
					t.Errorf("served probability %g outside (0,1]", res.Probability)
					return
				}
				resp, err = http.Get(srv.URL + "/v1/rules?min_lift=0.1")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}

	obsRng := rand.New(rand.NewSource(42))
	labels := func(rows []Record) string {
		s := model.Schema()
		var b strings.Builder
		b.WriteString(`{"rows":[`)
		for i, r := range rows {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('[')
			for j, v := range r {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%q", s.Attr(j).Values[v])
			}
			b.WriteByte(']')
		}
		b.WriteString(`]}`)
		return b.String()
	}
	for i := 0; i < 6; i++ {
		resp, err := http.Post(srv.URL+"/v1/observe", "application/json",
			strings.NewReader(labels(streamRows(obsRng, 20))))
		if err != nil {
			t.Fatal(err)
		}
		var rep UpdateReport
		err = json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d: %v status %d %+v", i, err, resp.StatusCode, rep)
		}
		if rep.Rows != 20 {
			t.Fatalf("observe %d: report %+v", i, rep)
		}
	}
	close(stop)
	wg.Wait()
}
