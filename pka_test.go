package pka

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pka/internal/paperdata"
)

// memoModel discovers over the paper fixture through the public API.
func memoModel(t testing.TB, opts Options) *Model {
	t.Helper()
	m, err := DiscoverTable(paperdata.Table(), paperdata.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDiscoverNilInputs(t *testing.T) {
	if _, err := Discover(nil, Options{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := DiscoverTable(nil, nil, Options{}); err == nil {
		t.Error("nil table accepted")
	}
}

func TestEndToEndFromRecords(t *testing.T) {
	// Full pipeline: raw records -> tabulate -> discover -> query.
	d := paperdata.Records()
	m, err := Discover(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Conditional(
		[]Assignment{{Attr: "CANCER", Value: "Yes"}},
		[]Assignment{{Attr: "SMOKING", Value: "Smoker"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-240.0/1290) > 5e-3 {
		t.Errorf("P(cancer|smoker) = %.4f, empirical %.4f", p, 240.0/1290)
	}
	if len(m.Findings()) == 0 {
		t.Error("no findings")
	}
	if m.NumConstraints() <= 7 {
		t.Errorf("constraints = %d, expected first-order plus findings", m.NumConstraints())
	}
}

func TestCSVPipeline(t *testing.T) {
	csvText := "SMOKING,CANCER\nyes,yes\nyes,yes\nyes,no\nno,no\nno,no\nno,no\nno,yes\nyes,no\n"
	schema, err := InferSchema(strings.NewReader(csvText), 10)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReadCSV(strings.NewReader(csvText), schema)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 8 {
		t.Fatalf("records = %d", d.Len())
	}
	if _, err := Discover(d, Options{}); err != nil {
		t.Fatalf("discovery on CSV data: %v", err)
	}
}

func TestModelQueriesConsistent(t *testing.T) {
	m := memoModel(t, Options{})
	// Joint = conditional × evidence.
	target := []Assignment{{Attr: "CANCER", Value: "Yes"}}
	given := []Assignment{{Attr: "FAMILY HISTORY", Value: "Yes"}}
	cond, err := m.Conditional(target, given)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := m.Probability(given...)
	if err != nil {
		t.Fatal(err)
	}
	both, err := m.Probability(append(target, given...)...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(both-cond*pg) > 1e-9 {
		t.Errorf("chain rule broken: %.9f vs %.9f", both, cond*pg)
	}
	dist, err := m.Distribution("SMOKING")
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 3 {
		t.Errorf("distribution entries = %d", len(dist))
	}
	v, p, err := m.MostLikely("CANCER")
	if err != nil || v != "No" || p < 0.8 {
		t.Errorf("MostLikely = %q %.3f %v", v, p, err)
	}
	lift, err := m.Lift(Assignment{Attr: "CANCER", Value: "Yes"},
		Assignment{Attr: "SMOKING", Value: "Smoker"})
	if err != nil || lift < 1.3 || lift > 1.6 {
		t.Errorf("lift = %.3f %v", lift, err)
	}
}

func TestModelRules(t *testing.T) {
	m := memoModel(t, Options{})
	rs, err := m.Rules(RuleOptions{MinLiftDistance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules above lift threshold")
	}
	for _, r := range rs {
		if math.Abs(r.Lift-1) < 0.1 {
			t.Errorf("rule %s under threshold", r)
		}
	}
}

func TestOptionsFlowThrough(t *testing.T) {
	m := memoModel(t, Options{MaxOrder: 2, MaxConstraints: 1, RecordScans: true})
	if len(m.Findings()) != 1 {
		t.Errorf("findings = %d with cap 1", len(m.Findings()))
	}
	if len(m.Scans()) == 0 {
		t.Error("scans not recorded")
	}
	// Prior flows through: a different prior changes deltas.
	m2 := memoModel(t, Options{PriorH2: 0.8, RecordScans: true, MaxConstraints: 1})
	d1 := m.Scans()[0].Tests[0].Delta
	d2 := m2.Scans()[0].Tests[0].Delta
	if math.Abs((d2-d1)-(-1.386)) > 0.01 {
		t.Errorf("prior 0.8 shifted delta by %.3f, want -1.386", d2-d1)
	}
}

func TestSaveLoadQueryModel(t *testing.T) {
	m := memoModel(t, Options{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Probability(Assignment{Attr: "CANCER", Value: "Yes"})
	got, err := q.Probability(Assignment{Attr: "CANCER", Value: "Yes"})
	if err != nil || math.Abs(got-want) > 1e-12 {
		t.Errorf("loaded model: %.9f vs %.9f, err %v", got, want, err)
	}
	rs, err := q.Rules(RuleOptions{})
	if err != nil || len(rs) == 0 {
		t.Errorf("loaded model rules: %d, %v", len(rs), err)
	}
	if q.Schema().R() != 3 {
		t.Error("loaded schema wrong")
	}
	if !strings.Contains(q.Explain(), "SMOKING") {
		t.Error("loaded Explain missing labels")
	}
	d, err := q.Distribution("CANCER")
	if err != nil || len(d) != 2 {
		t.Errorf("loaded Distribution: %v %v", d, err)
	}
	v, _, err := q.MostLikely("CANCER")
	if err != nil || v != "No" {
		t.Errorf("loaded MostLikely: %q %v", v, err)
	}
}

func TestExplainAndSummary(t *testing.T) {
	m := memoModel(t, Options{})
	if !strings.Contains(m.Explain(), "SMOKING=Smoker") {
		t.Error("Explain missing labels")
	}
	if !strings.Contains(m.Summary(), "N=3428") {
		t.Error("Summary missing N")
	}
	h, err := m.Entropy()
	if err != nil || h <= 0 {
		t.Errorf("entropy = %g, %v", h, err)
	}
	if m.Schema().R() != 3 {
		t.Error("Schema accessor wrong")
	}
	if m.KnowledgeBase() == nil {
		t.Error("KnowledgeBase accessor nil")
	}
}
